package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/netsim"
	"github.com/evolvable-net/evolve/internal/topology"
)

// relOf returns a's relationship toward b, or ok=false when not adjacent.
func relOf(n *topology.Network, a, b topology.ASN) (topology.Rel, bool) {
	for _, nb := range n.Neighbors(a) {
		if nb.ASN == b {
			return nb.Rel, true
		}
	}
	return 0, false
}

// valleyFree checks the Gao-Rexford validity of an AS path: once the path
// has traversed a peer link or gone provider→customer (downhill), it must
// never go customer→provider (uphill) or cross another peer link.
func valleyFree(n *topology.Network, path []topology.ASN) bool {
	descending := false
	for i := 0; i+1 < len(path); i++ {
		rel, ok := relOf(n, path[i], path[i+1])
		if !ok {
			return false // non-adjacent hop
		}
		switch rel {
		case topology.RelCustomer: // uphill: path[i] pays path[i+1]
			if descending {
				return false
			}
		case topology.RelPeer:
			if descending {
				return false
			}
			descending = true
		case topology.RelProvider: // downhill
			descending = true
		}
	}
	return true
}

// TestAllPathsValleyFree property-tests the safety invariant: every
// selected BGP path in every randomly generated internet is valley-free.
// This is the global guarantee that no customer or peer is ever used for
// transit it isn't paid for.
func TestAllPathsValleyFree(t *testing.T) {
	f := func(seed int64) bool {
		n, err := topology.TransitStub(1+int(uint64(seed)%3), 2+int(uint64(seed)%3), 0.5,
			topology.GenConfig{Seed: seed, RoutersPerDomain: 2})
		if err != nil {
			return false
		}
		s := NewSystem(n)
		s.Converge()
		for _, holder := range n.ASNs() {
			for _, origin := range n.ASNs() {
				r, ok := s.BestRoute(holder, n.Domain(origin).Prefix)
				if !ok {
					continue
				}
				full := append([]topology.ASN{holder}, r.Path...)
				if !valleyFree(n, full) {
					t.Logf("seed %d: valley in path %v (holder %d → origin %d)",
						seed, full, holder, origin)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestAllPathsValleyFreeBarabasiAlbert repeats the invariant on the
// heavy-tailed hierarchy, where long provider chains exist.
func TestAllPathsValleyFreeBarabasiAlbert(t *testing.T) {
	f := func(seed int64) bool {
		n, err := topology.BarabasiAlbert(8+int(uint64(seed)%8), 1+int(uint64(seed)%2),
			topology.GenConfig{Seed: seed, RoutersPerDomain: 1})
		if err != nil {
			return false
		}
		s := NewSystem(n)
		s.Converge()
		for _, holder := range n.ASNs() {
			for _, origin := range n.ASNs() {
				r, ok := s.BestRoute(holder, n.Domain(origin).Prefix)
				if !ok {
					continue
				}
				full := append([]topology.ASN{holder}, r.Path...)
				if !valleyFree(n, full) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPathsAreLoopFree: no AS ever appears twice in a selected path.
func TestPathsAreLoopFree(t *testing.T) {
	f := func(seed int64) bool {
		n, err := topology.Waxman(10, 0.7, 0.5, topology.GenConfig{Seed: seed, RoutersPerDomain: 1})
		if err != nil {
			return false
		}
		s := NewSystem(n)
		s.Converge()
		for _, holder := range n.ASNs() {
			for _, origin := range n.ASNs() {
				r, ok := s.BestRoute(holder, n.Domain(origin).Prefix)
				if !ok {
					continue
				}
				seen := map[topology.ASN]bool{holder: true}
				for _, a := range r.Path {
					if seen[a] {
						return false
					}
					seen[a] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCustomerRoutesAlwaysUsable: in a fully provider-connected hierarchy
// (every stub has a provider path to every other), customer-originated
// prefixes must be globally reachable — the reachability side of policy.
func TestCustomerRoutesAlwaysUsable(t *testing.T) {
	f := func(seed int64) bool {
		n, err := topology.BarabasiAlbert(10, 1, topology.GenConfig{Seed: seed, RoutersPerDomain: 1})
		if err != nil {
			return false
		}
		// BA with m=1 builds a provider tree: full reachability expected.
		s := NewSystem(n)
		s.Converge()
		for _, a := range n.ASNs() {
			for _, b := range n.ASNs() {
				if _, ok := s.BestRoute(a, n.Domain(b).Prefix); !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestSessionChurnMatchesFixpoint is the session-vs-fixpoint
// differential under churn: random policy-safe internets with
// originations, mid-stream withdrawals, and link flaps (some shorter
// than the hold timer, exercising the sequence-gap resync; some longer,
// exercising the Down/flush/replay path) injected while UPDATE traffic
// is still in flight. Because every flap restores its link, the unique
// stable routing of the final configuration is the fixpoint's answer —
// at quiescence every speaker's loc-RIB must match it exactly.
func TestSessionChurnMatchesFixpoint(t *testing.T) {
	// Seeds that exposed real bugs during bring-up stay pinned.
	for _, seed := range []int64{-2872183867963412414, -8071402118913251605} {
		if !churnDifferential(t, seed) {
			t.Errorf("pinned regression seed %d failed", seed)
		}
	}
	f := func(seed int64) bool { return churnDifferential(t, seed) }
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

var debugChurn bool

func churnDifferential(t *testing.T, seed int64) bool {
	{
		rng := rand.New(rand.NewSource(seed))
		net, err := topology.TransitStub(1+rng.Intn(3), 2+rng.Intn(3), 0.4,
			topology.GenConfig{Seed: seed, RoutersPerDomain: 1})
		if err != nil {
			return false
		}
		asns := net.ASNs()

		fix := NewSystem(net)
		eng := netsim.NewEngine()
		fab := netsim.NewFabric(eng)
		ss := NewSessionSystemConfig(net, fab, DefaultSessionConfig())
		if _, ok := ss.RunToConvergence(0); !ok {
			t.Log("cold start did not quiesce")
			return false
		}
		base := eng.Now()

		// Link flaps mid-stream: pick adjacent AS pairs, down for windows
		// straddling the hold timer both ways.
		hold := ss.Config().Hold
		for i := 0; i < 1+rng.Intn(4); i++ {
			a := asns[rng.Intn(len(asns))]
			nbrs := net.Neighbors(a)
			if len(nbrs) == 0 {
				continue
			}
			b := nbrs[rng.Intn(len(nbrs))].ASN
			at := base + netsim.Time(rng.Intn(8000))
			downFor := netsim.Time(1 + rng.Intn(int(3*hold)))
			if debugChurn {
				t.Logf("flap %d-%d at %d for %d", a, b, at, downFor)
			}
			eng.At(at, func() { fab.FlapLink(int(a), int(b), downFor) })
		}

		// Originations (occasionally anycast from two ASes) with
		// mid-stream withdrawals, mirrored into the fixpoint config.
		var prefixes []addr.Prefix
		for i := 0; i < 2+rng.Intn(4); i++ {
			a4, aerr := addr.Option1Address(uint32(i))
			if aerr != nil {
				return false
			}
			hp := addr.HostPrefix(a4)
			prefixes = append(prefixes, hp)
			origins := []topology.ASN{asns[rng.Intn(len(asns))]}
			if second := asns[rng.Intn(len(asns))]; rng.Intn(3) == 0 && second != origins[0] {
				origins = append(origins, second)
			}
			for _, origin := range origins {
				at := base + netsim.Time(rng.Intn(6000))
				eng.At(at, func() { ss.Speakers[origin].Originate(hp) })
				if rng.Intn(2) == 0 {
					wAt := at + netsim.Time(500+rng.Intn(8000))
					if debugChurn {
						t.Logf("originate AS%d %s at %d, withdraw at %d", origin, hp, at, wAt)
					}
					eng.At(wAt, func() { ss.Speakers[origin].Withdraw(hp) })
				} else {
					if debugChurn {
						t.Logf("originate AS%d %s at %d (kept)", origin, hp, at)
					}
					fix.Originate(origin, hp)
				}
			}
		}
		fix.Converge()

		// Drive past every scheduled event (flap restores included), then
		// settle to quiescence.
		eng.RunUntil(base + 8000 + 3*hold + 1)
		if _, ok := ss.RunToConvergence(0); !ok {
			t.Logf("seed %d: churn run did not quiesce", seed)
			return false
		}

		for _, origin := range asns {
			prefixes = append(prefixes, net.Domain(origin).Prefix)
		}
		for _, holder := range asns {
			for _, p := range prefixes {
				fr, fok := fix.BestRoute(holder, p)
				sr, sok := ss.Speakers[holder].Best(p)
				if fok != sok || (fok && !routeEqual(fr, sr)) {
					t.Logf("seed %d: AS%d→%s: fix %+v(%v) session %+v(%v)",
						seed, holder, p, fr, fok, sr, sok)
					if debugChurn {
						for _, a := range asns {
							sp := ss.Speakers[a]
							t.Logf("AS%d ribIn[%s]=%v loc=%v", a, p, sp.ribIn[p], sp.loc[p])
							for _, nb := range sp.nbrOrder {
								se := sp.sessions[nb]
								ao, hasAO := se.adjOut[p]
								t.Logf("  AS%d→AS%d state=%v stale[p]=%v adjOut[p]=%v(%v) dirty[p]=%v",
									a, nb, se.state, se.stale[p], ao, hasAO, se.dirty[p])
							}
						}
					}
					return false
				}
			}
		}
		return true
	}
}
