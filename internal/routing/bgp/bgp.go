// Package bgp implements an AS-level path-vector protocol with
// Gao-Rexford business policy, the inter-domain substrate under both of
// the paper's anycast deployment options (§3.2):
//
//   - option 1: participating ASes all originate the same non-aggregatable
//     anycast host prefix, which propagates globally like any route, so
//     each AS's policy delivers to its preferred (typically closest)
//     participant;
//   - option 2: the anycast address lives inside the default ISP's
//     aggregate, so non-participants need no new routes at all, and a
//     participant can additionally advertise the host prefix to chosen
//     neighbours with NO_EXPORT semantics ("Q peers with Y to advertise
//     its path for the anycast address").
//
// The engine computes the stable routing by synchronous fixpoint
// iteration: in each round every AS selects best routes from the adverts
// of the previous round and re-exports under Gao-Rexford rules, until
// nothing changes. For policy-safe configurations (customer routes
// preferred, no peer/provider transit) this converges and is
// deterministic.
package bgp

import (
	"fmt"
	"sort"
	"sync"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/rib"
	"github.com/evolvable-net/evolve/internal/topology"
)

// Local preference derived from the relationship to the advertising
// neighbour: revenue-bearing customer routes beat free peer routes beat
// paid provider routes.
const (
	prefCustomer = 300
	prefPeer     = 200
	prefProvider = 100
	prefSelf     = 1000
)

func prefFor(rel topology.Rel) int {
	switch rel {
	case topology.RelProvider: // neighbour is our customer? No:
		// Rel is *our* relationship toward the neighbour. If we are the
		// provider, the neighbour is our customer.
		return prefCustomer
	case topology.RelCustomer:
		return prefProvider
	default:
		return prefPeer
	}
}

// Route is one BGP route as held by an AS.
type Route struct {
	Prefix addr.Prefix
	// Path is the AS path from the holder (exclusive) to the origin
	// (inclusive); it is empty for self-originated routes. Path[0] is the
	// next-hop AS.
	Path []topology.ASN
	// LocalPref encodes the Gao-Rexford preference tier.
	LocalPref int
	// NoExport marks a route that must not be re-advertised (the BGP
	// NO_EXPORT community), used for option-2 selective peering adverts.
	NoExport bool
	// FromCustomer records whether the route was learned from a customer,
	// which controls export policy.
	FromCustomer bool
}

// Origin returns the originating AS, or the holder's own ASN sentinel -1
// meaning "self" when the path is empty.
func (r Route) Origin() topology.ASN {
	if len(r.Path) == 0 {
		return -1
	}
	return r.Path[len(r.Path)-1]
}

// NextHop returns the next-hop AS, or -1 for self-originated routes.
func (r Route) NextHop() topology.ASN {
	if len(r.Path) == 0 {
		return -1
	}
	return r.Path[0]
}

func (r Route) hasLoop(asn topology.ASN) bool {
	for _, a := range r.Path {
		if a == asn {
			return true
		}
	}
	return false
}

// better reports whether a beats b under the decision process:
// local-pref, then AS-path length, then lowest next hop.
func better(a, b Route) bool {
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if len(a.Path) != len(b.Path) {
		return len(a.Path) < len(b.Path)
	}
	return a.NextHop() < b.NextHop()
}

// origination is a prefix an AS injects into BGP.
type origination struct {
	prefix addr.Prefix
	// exportTo, when non-nil, restricts the advert to the listed
	// neighbours and tags it NO_EXPORT.
	exportTo map[topology.ASN]bool
}

// System is the BGP of a whole internet. Queries are safe for concurrent
// use (the lazy re-convergence they trigger serializes internally);
// origination changes and Refresh serialize against them.
type System struct {
	net *topology.Network

	// mu guards everything below: queries hold it for read (after an
	// upgrade-to-write pass when re-convergence is pending), mutators for
	// write.
	mu sync.RWMutex
	// originated[asn] lists the AS's injected prefixes in injection order.
	originated map[topology.ASN][]origination
	// best[asn] is the stable per-AS loc-RIB after Converge.
	best map[topology.ASN]map[addr.Prefix]Route
	// fib[asn] caches a longest-prefix-match view of best.
	fib map[topology.ASN]*rib.Table4[Route]
	// neighbors caches topology adjacency.
	neighbors map[topology.ASN][]topology.ASNeighbor

	converged bool
	// Rounds records how many fixpoint rounds the last Converge took; read
	// it only after convergence, not while queries are in flight.
	Rounds int
}

// NewSystem builds the BGP system; every domain originates its own
// aggregate. Call Converge before queries.
func NewSystem(net *topology.Network) *System {
	s := &System{
		net:        net,
		originated: map[topology.ASN][]origination{},
		best:       map[topology.ASN]map[addr.Prefix]Route{},
		fib:        map[topology.ASN]*rib.Table4[Route]{},
		neighbors:  map[topology.ASN][]topology.ASNeighbor{},
	}
	for _, asn := range net.ASNs() {
		s.neighbors[asn] = net.Neighbors(asn)
		s.Originate(asn, net.Domain(asn).Prefix)
	}
	return s
}

// Originate injects a prefix at asn with normal global propagation.
func (s *System) Originate(asn topology.ASN, p addr.Prefix) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.converged = false
	s.originated[asn] = append(s.originated[asn], origination{prefix: p})
}

// OriginateTo injects a prefix at asn advertised only to the given
// neighbours, tagged NO_EXPORT — the paper's option-2 "peer to advertise
// the anycast route" arrangement.
func (s *System) OriginateTo(asn topology.ASN, p addr.Prefix, neighbors ...topology.ASN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.converged = false
	scope := map[topology.ASN]bool{}
	for _, n := range neighbors {
		scope[n] = true
	}
	s.originated[asn] = append(s.originated[asn], origination{prefix: p, exportTo: scope})
}

// Withdraw removes all originations of p at asn; it reports whether any
// existed.
func (s *System) Withdraw(asn topology.ASN, p addr.Prefix) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.originated[asn][:0]
	removed := false
	for _, o := range s.originated[asn] {
		if o.prefix == p {
			removed = true
			continue
		}
		out = append(out, o)
	}
	s.originated[asn] = out
	if removed {
		s.converged = false
	}
	return removed
}

// Refresh re-reads the topology's inter-domain adjacency (after link
// failures or repairs) and forces re-convergence on the next query.
// Originations are preserved.
func (s *System) Refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.neighbors = map[topology.ASN][]topology.ASNeighbor{}
	for _, asn := range s.net.ASNs() {
		s.neighbors[asn] = s.net.Neighbors(asn)
	}
	s.converged = false
}

// SuspendOriginations temporarily removes every origination of p at asn
// (normal and selective alike), returning a restore function that puts
// them back verbatim. Used by the anycast bootstrap, which must observe
// the routing state as it was before the suspending domain began
// advertising.
func (s *System) SuspendOriginations(asn topology.ASN, p addr.Prefix) (restore func(), found bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var saved []origination
	out := s.originated[asn][:0]
	for _, o := range s.originated[asn] {
		if o.prefix == p {
			saved = append(saved, o)
			continue
		}
		out = append(out, o)
	}
	s.originated[asn] = out
	if len(saved) > 0 {
		s.converged = false
	}
	return func() {
		if len(saved) == 0 {
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		s.originated[asn] = append(s.originated[asn], saved...)
		s.converged = false
	}, len(saved) > 0
}

// exportsTo decides whether holder may advertise route r to the neighbour
// with relationship rel (holder's relationship toward the neighbour),
// under Gao-Rexford: customer-learned and self-originated routes go to
// everyone; peer- and provider-learned routes go only to customers.
func exportsTo(r Route, rel topology.Rel) bool {
	if r.NoExport {
		return false
	}
	if len(r.Path) == 0 || r.FromCustomer {
		return true
	}
	// Routes from peers/providers: export only to customers, i.e. when we
	// are the provider on this adjacency.
	return rel == topology.RelProvider
}

// Converge runs the synchronous fixpoint. It is idempotent and must be
// called after any Originate/OriginateTo/Withdraw (queries also trigger
// it lazily).
func (s *System) Converge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.convergeLocked()
}

// rlockConverged returns with the read lock held and the routing
// converged; the loop re-checks because a mutator may slip in between the
// upgrade and the read re-acquisition.
func (s *System) rlockConverged() {
	for {
		s.mu.RLock()
		if s.converged {
			return
		}
		s.mu.RUnlock()
		s.mu.Lock()
		s.convergeLocked()
		s.mu.Unlock()
	}
}

func (s *System) convergeLocked() {
	if s.converged {
		return
	}
	asns := s.net.ASNs()
	best := map[topology.ASN]map[addr.Prefix]Route{}
	for _, asn := range asns {
		best[asn] = map[addr.Prefix]Route{}
	}
	s.Rounds = 0
	for {
		s.Rounds++
		changed := false
		// Gather adverts destined to each AS from the previous round.
		inbox := map[topology.ASN][]Route{}
		for _, from := range asns {
			// Self-originations advertise into one's own inbox at
			// LocalPref prefSelf so they always win locally. Selective
			// originations carry NO_EXPORT so the ordinary export loop
			// below never re-advertises them; only the dedicated
			// selective-advert loop does.
			for _, o := range s.originated[from] {
				inbox[from] = append(inbox[from], Route{
					Prefix:    o.prefix,
					LocalPref: prefSelf,
					NoExport:  o.exportTo != nil,
				})
			}
			for _, nb := range s.neighbors[from] {
				rel := nb.Rel // from's relationship toward nb
				// Ordinary best routes.
				for _, r := range sortedRoutes(best[from]) {
					if !exportsTo(r, rel) {
						continue
					}
					adv := Route{
						Prefix:       r.Prefix,
						Path:         append([]topology.ASN{from}, r.Path...),
						LocalPref:    prefFor(rel.Invert()),
						FromCustomer: rel.Invert() == topology.RelProvider,
					}
					inbox[nb.ASN] = append(inbox[nb.ASN], adv)
				}
				// Selective originations.
				for _, o := range s.originated[from] {
					if o.exportTo == nil || !o.exportTo[nb.ASN] {
						continue
					}
					adv := Route{
						Prefix:       o.prefix,
						Path:         []topology.ASN{from},
						LocalPref:    prefFor(rel.Invert()),
						NoExport:     true,
						FromCustomer: rel.Invert() == topology.RelProvider,
					}
					inbox[nb.ASN] = append(inbox[nb.ASN], adv)
				}
			}
		}
		// Decision process per AS.
		for _, asn := range asns {
			next := map[addr.Prefix]Route{}
			for _, cand := range inbox[asn] {
				if cand.hasLoop(asn) {
					continue
				}
				cur, ok := next[cand.Prefix]
				if !ok || better(cand, cur) {
					next[cand.Prefix] = cand
				}
			}
			if !ribEqual(best[asn], next) {
				best[asn] = next
				changed = true
			}
		}
		if !changed {
			break
		}
		if s.Rounds > 4*len(asns)+8 {
			// Gao-Rexford-safe configurations converge in O(diameter);
			// this bound only trips on genuinely unsafe policy.
			panic(fmt.Sprintf("bgp: no convergence after %d rounds", s.Rounds))
		}
	}
	s.best = best
	s.fib = map[topology.ASN]*rib.Table4[Route]{}
	for _, asn := range asns {
		t := &rib.Table4[Route]{}
		for _, r := range best[asn] {
			t.Insert(r.Prefix, r)
		}
		s.fib[asn] = t
	}
	s.converged = true
}

func sortedRoutes(m map[addr.Prefix]Route) []Route {
	out := make([]Route, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Prefix, out[j].Prefix
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.Len < b.Len
	})
	return out
}

func ribEqual(a, b map[addr.Prefix]Route) bool {
	if len(a) != len(b) {
		return false
	}
	for p, ra := range a {
		rb, ok := b[p]
		if !ok || !routeEqual(ra, rb) {
			return false
		}
	}
	return true
}

func routeEqual(a, b Route) bool {
	if a.Prefix != b.Prefix || a.LocalPref != b.LocalPref ||
		a.NoExport != b.NoExport || a.FromCustomer != b.FromCustomer ||
		len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}

// BestRoute returns asn's selected route for exactly prefix p.
func (s *System) BestRoute(asn topology.ASN, p addr.Prefix) (Route, bool) {
	s.rlockConverged()
	defer s.mu.RUnlock()
	r, ok := s.best[asn][p]
	return r, ok
}

// Lookup longest-prefix-matches dst in asn's FIB.
func (s *System) Lookup(asn topology.ASN, dst addr.V4) (Route, bool) {
	s.rlockConverged()
	defer s.mu.RUnlock()
	return s.lookupLocked(asn, dst)
}

func (s *System) lookupLocked(asn topology.ASN, dst addr.V4) (Route, bool) {
	t, ok := s.fib[asn]
	if !ok {
		return Route{}, false
	}
	r, _, ok := t.Lookup(dst)
	return r, ok
}

// TableSize returns the number of prefixes in asn's loc-RIB (routing-state
// experiments, §3.2 scalability discussion).
func (s *System) TableSize(asn topology.ASN) int {
	s.rlockConverged()
	defer s.mu.RUnlock()
	return len(s.best[asn])
}

// ASPath returns the domain-level path a packet from inside `from`
// follows toward dst, starting with from itself. ok is false when from
// has no route.
func (s *System) ASPath(from topology.ASN, dst addr.V4) ([]topology.ASN, bool) {
	s.rlockConverged()
	defer s.mu.RUnlock()
	r, ok := s.lookupLocked(from, dst)
	if !ok {
		return nil, false
	}
	path := append([]topology.ASN{from}, r.Path...)
	// Downstream ASes may match a more specific prefix than `from` did
	// (e.g. a NO_EXPORT host route covering an aggregate another AS
	// holds). Walk hop by hop and splice when the next AS diverges.
	maxLen := 2*len(s.net.ASNs()) + 2 // guards against pathological splicing
	for i := 0; i+1 < len(path) && len(path) <= maxLen; i++ {
		cur := path[i+1]
		if i+2 == len(path) {
			break
		}
		nr, ok := s.lookupLocked(cur, dst)
		if !ok {
			return path[:i+2], true
		}
		want := nr.NextHop()
		if want == -1 {
			return path[:i+2], true
		}
		if want != path[i+2] {
			// Splice in cur's actual continuation.
			path = append(path[:i+2], nr.Path...)
		}
	}
	return path, true
}

// LinksBetween returns every border link between adjacent domains a and
// b, oriented From-in-a and deterministically sorted. Empty when not
// adjacent.
func (s *System) LinksBetween(a, b topology.ASN) []topology.InterLink {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.linksBetweenLocked(a, b)
}

func (s *System) linksBetweenLocked(a, b topology.ASN) []topology.InterLink {
	for _, nb := range s.neighbors[a] {
		if nb.ASN == b && len(nb.Links) > 0 {
			links := append([]topology.InterLink(nil), nb.Links...)
			sort.Slice(links, func(i, j int) bool {
				if links[i].From != links[j].From {
					return links[i].From < links[j].From
				}
				return links[i].To < links[j].To
			})
			return links
		}
	}
	return nil
}

// LinkBetween returns the deterministic first border link between
// adjacent domains a and b, oriented From-in-a. ok is false when they are
// not adjacent. Forwarding walks prefer LinksBetween plus hot-potato
// selection; this remains for callers needing any single representative
// link.
func (s *System) LinkBetween(a, b topology.ASN) (topology.InterLink, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	links := s.linksBetweenLocked(a, b)
	if len(links) == 0 {
		return topology.InterLink{}, false
	}
	return links[0], true
}
