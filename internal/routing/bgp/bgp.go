// Package bgp implements an AS-level path-vector protocol with
// Gao-Rexford business policy, the inter-domain substrate under both of
// the paper's anycast deployment options (§3.2):
//
//   - option 1: participating ASes all originate the same non-aggregatable
//     anycast host prefix, which propagates globally like any route, so
//     each AS's policy delivers to its preferred (typically closest)
//     participant;
//   - option 2: the anycast address lives inside the default ISP's
//     aggregate, so non-participants need no new routes at all, and a
//     participant can additionally advertise the host prefix to chosen
//     neighbours with NO_EXPORT semantics ("Q peers with Y to advertise
//     its path for the anycast address").
//
// The engine computes the stable routing by synchronous fixpoint
// iteration: in each round every AS selects best routes from the adverts
// of the previous round and re-exports under Gao-Rexford rules, until
// nothing changes. For policy-safe configurations (customer routes
// preferred, no peer/provider transit) this converges and is
// deterministic.
//
// Convergence is lazy and per-prefix: distinct prefixes never interact
// in the fixpoint (an AS's decision for prefix p reads only the previous
// round's routes for p), so the global fixpoint factors into independent
// per-prefix fixpoints. Queries converge exactly the prefixes they
// touch — a longest-prefix lookup converges only the prefixes on its
// match chain — which is what makes 10k+-domain internets queryable:
// converging every prefix at every AS is quadratic in domains, while a
// forwarding walk needs only a handful of prefixes.
package bgp

import (
	"fmt"
	"sort"
	"sync"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/rib"
	"github.com/evolvable-net/evolve/internal/topology"
)

// Local preference derived from the relationship to the advertising
// neighbour: revenue-bearing customer routes beat free peer routes beat
// paid provider routes.
const (
	prefCustomer = 300
	prefPeer     = 200
	prefProvider = 100
	prefSelf     = 1000
)

func prefFor(rel topology.Rel) int {
	switch rel {
	case topology.RelProvider: // neighbour is our customer? No:
		// Rel is *our* relationship toward the neighbour. If we are the
		// provider, the neighbour is our customer.
		return prefCustomer
	case topology.RelCustomer:
		return prefProvider
	default:
		return prefPeer
	}
}

// Route is one BGP route as held by an AS.
type Route struct {
	Prefix addr.Prefix
	// Path is the AS path from the holder (exclusive) to the origin
	// (inclusive); it is empty for self-originated routes. Path[0] is the
	// next-hop AS.
	Path []topology.ASN
	// LocalPref encodes the Gao-Rexford preference tier.
	LocalPref int
	// NoExport marks a route that must not be re-advertised (the BGP
	// NO_EXPORT community), used for option-2 selective peering adverts.
	NoExport bool
	// FromCustomer records whether the route was learned from a customer,
	// which controls export policy.
	FromCustomer bool
}

// Origin returns the originating AS, or the holder's own ASN sentinel -1
// meaning "self" when the path is empty.
func (r Route) Origin() topology.ASN {
	if len(r.Path) == 0 {
		return -1
	}
	return r.Path[len(r.Path)-1]
}

// NextHop returns the next-hop AS, or -1 for self-originated routes.
func (r Route) NextHop() topology.ASN {
	if len(r.Path) == 0 {
		return -1
	}
	return r.Path[0]
}

func (r Route) hasLoop(asn topology.ASN) bool {
	for _, a := range r.Path {
		if a == asn {
			return true
		}
	}
	return false
}

// better reports whether a beats b under the decision process:
// local-pref, then AS-path length, then lowest next hop.
func better(a, b Route) bool {
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if len(a.Path) != len(b.Path) {
		return len(a.Path) < len(b.Path)
	}
	return a.NextHop() < b.NextHop()
}

// origination is a prefix an AS injects into BGP.
type origination struct {
	prefix addr.Prefix
	// exportTo, when non-nil, restricts the advert to the listed
	// neighbours and tags it NO_EXPORT.
	exportTo map[topology.ASN]bool
}

// prefixState is the converged routing for one prefix: each AS's
// selected route (absent = no route). States are built lazily per prefix
// and discarded whenever something that could affect the prefix changes.
type prefixState struct {
	best map[topology.ASN]Route
}

// System is the BGP of a whole internet. Queries are safe for concurrent
// use (the lazy re-convergence they trigger serializes internally);
// origination changes and Refresh serialize against them.
type System struct {
	net *topology.Network

	// mu guards everything below: queries hold it for read (after an
	// upgrade-to-write pass when re-convergence is pending), mutators for
	// write.
	mu sync.RWMutex
	// originated[asn] lists the AS's injected prefixes in injection order.
	originated map[topology.ASN][]origination
	// states holds the lazily-converged per-prefix routing.
	states map[addr.Prefix]*prefixState
	// index longest-prefix-matches over every prefix originated anywhere;
	// the value counts live originations so withdrawal of the last one
	// removes the entry. Lookup walks its match chain instead of a per-AS
	// FIB — per-AS tables would be #prefixes × #ASes state at scale.
	index rib.Table4[int]
	// neighbors caches topology adjacency.
	neighbors map[topology.ASN][]topology.ASNeighbor

	// Rounds records how many fixpoint rounds the most recent per-prefix
	// convergence took; read it only after convergence, not while queries
	// are in flight.
	Rounds int
}

// NewSystem builds the BGP system; every domain originates its own
// aggregate. Queries converge lazily; calling Converge first is optional.
func NewSystem(net *topology.Network) *System {
	s := &System{
		net:        net,
		originated: map[topology.ASN][]origination{},
		states:     map[addr.Prefix]*prefixState{},
		neighbors:  net.AllNeighbors(),
	}
	for _, asn := range net.ASNs() {
		s.Originate(asn, net.Domain(asn).Prefix)
	}
	return s
}

// addOrigLocked registers an origination and invalidates exactly the
// state the new advert can affect: prefix p's.
func (s *System) addOrigLocked(asn topology.ASN, o origination) {
	s.originated[asn] = append(s.originated[asn], o)
	n, _ := s.index.Exact(o.prefix)
	s.index.Insert(o.prefix, n+1)
	delete(s.states, o.prefix)
}

// removeOrigsLocked removes every origination of p at asn, returning the
// removed entries and maintaining index counts and state invalidation.
func (s *System) removeOrigsLocked(asn topology.ASN, p addr.Prefix) []origination {
	var removed []origination
	out := s.originated[asn][:0]
	for _, o := range s.originated[asn] {
		if o.prefix == p {
			removed = append(removed, o)
			continue
		}
		out = append(out, o)
	}
	s.originated[asn] = out
	if len(removed) > 0 {
		if n, _ := s.index.Exact(p); n > len(removed) {
			s.index.Insert(p, n-len(removed))
		} else {
			s.index.Delete(p)
		}
		delete(s.states, p)
	}
	return removed
}

// Originate injects a prefix at asn with normal global propagation.
func (s *System) Originate(asn topology.ASN, p addr.Prefix) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addOrigLocked(asn, origination{prefix: p})
}

// OriginateTo injects a prefix at asn advertised only to the given
// neighbours, tagged NO_EXPORT — the paper's option-2 "peer to advertise
// the anycast route" arrangement.
func (s *System) OriginateTo(asn topology.ASN, p addr.Prefix, neighbors ...topology.ASN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	scope := map[topology.ASN]bool{}
	for _, n := range neighbors {
		scope[n] = true
	}
	s.addOrigLocked(asn, origination{prefix: p, exportTo: scope})
}

// Withdraw removes all originations of p at asn; it reports whether any
// existed.
func (s *System) Withdraw(asn topology.ASN, p addr.Prefix) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.removeOrigsLocked(asn, p)) > 0
}

// Refresh re-reads the topology's inter-domain adjacency (after link
// failures or repairs) and forces re-convergence on the next query.
// Originations are preserved.
func (s *System) Refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.neighbors = s.net.AllNeighbors()
	s.states = map[addr.Prefix]*prefixState{}
}

// SuspendOriginations temporarily removes every origination of p at asn
// (normal and selective alike), returning a restore function that puts
// them back verbatim. Used by the anycast bootstrap, which must observe
// the routing state as it was before the suspending domain began
// advertising.
func (s *System) SuspendOriginations(asn topology.ASN, p addr.Prefix) (restore func(), found bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	saved := s.removeOrigsLocked(asn, p)
	return func() {
		if len(saved) == 0 {
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, o := range saved {
			s.addOrigLocked(asn, o)
		}
	}, len(saved) > 0
}

// exportsTo decides whether holder may advertise route r to the neighbour
// with relationship rel (holder's relationship toward the neighbour),
// under Gao-Rexford: customer-learned and self-originated routes go to
// everyone; peer- and provider-learned routes go only to customers.
func exportsTo(r Route, rel topology.Rel) bool {
	if r.NoExport {
		return false
	}
	if len(r.Path) == 0 || r.FromCustomer {
		return true
	}
	// Routes from peers/providers: export only to customers, i.e. when we
	// are the provider on this adjacency.
	return rel == topology.RelProvider
}

// Converge materialises the routing for every originated prefix. It is
// idempotent; queries converge what they need lazily, so calling it is
// only necessary when a caller wants the full cost paid up front.
func (s *System) Converge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.convergeAllLocked()
}

func (s *System) convergeAllLocked() {
	// Walk order (bit order over the index) is deterministic.
	var prefixes []addr.Prefix
	s.index.Walk(func(p addr.Prefix, _ int) bool {
		prefixes = append(prefixes, p)
		return true
	})
	for _, p := range prefixes {
		s.convergePrefixLocked(p)
	}
}

// convergePrefixLocked runs the synchronous fixpoint restricted to one
// prefix — the old whole-internet iteration with every other prefix's
// (non-interacting) work removed — and caches the result. In each round
// every AS selects its best route for p from the previous round's
// adverts and re-exports under Gao-Rexford rules, until nothing changes.
func (s *System) convergePrefixLocked(p addr.Prefix) *prefixState {
	if st, ok := s.states[p]; ok {
		return st
	}
	asns := s.net.ASNs()

	// ASes holding an origination of p, with the entries in injection
	// order. Precomputed so each round touches origination state only
	// where it exists.
	origs := map[topology.ASN][]origination{}
	for _, asn := range asns {
		for _, o := range s.originated[asn] {
			if o.prefix == p {
				origs[asn] = append(origs[asn], o)
			}
		}
	}

	best := map[topology.ASN]Route{}
	rounds := 0
	for {
		rounds++
		changed := false
		// Gather adverts destined to each AS from the previous round.
		// Self-originations advertise into one's own inbox at LocalPref
		// prefSelf so they always win locally. Selective originations
		// carry NO_EXPORT so the ordinary export below never
		// re-advertises them; only the dedicated selective-advert loop
		// does.
		inbox := map[topology.ASN][]Route{}
		for _, from := range asns {
			fromOrigs := origs[from]
			for _, o := range fromOrigs {
				inbox[from] = append(inbox[from], Route{
					Prefix:    p,
					LocalPref: prefSelf,
					NoExport:  o.exportTo != nil,
				})
			}
			r, has := best[from]
			if !has && len(fromOrigs) == 0 {
				continue
			}
			for _, nb := range s.neighbors[from] {
				rel := nb.Rel // from's relationship toward nb
				// Ordinary best route.
				if has && exportsTo(r, rel) {
					inbox[nb.ASN] = append(inbox[nb.ASN], Route{
						Prefix:       p,
						Path:         append([]topology.ASN{from}, r.Path...),
						LocalPref:    prefFor(rel.Invert()),
						FromCustomer: rel.Invert() == topology.RelProvider,
					})
				}
				// Selective originations.
				for _, o := range fromOrigs {
					if o.exportTo == nil || !o.exportTo[nb.ASN] {
						continue
					}
					inbox[nb.ASN] = append(inbox[nb.ASN], Route{
						Prefix:       p,
						Path:         []topology.ASN{from},
						LocalPref:    prefFor(rel.Invert()),
						NoExport:     true,
						FromCustomer: rel.Invert() == topology.RelProvider,
					})
				}
			}
		}
		// Decision process per AS: first-seen wins ties, matching the
		// inbox build order above.
		for _, asn := range asns {
			var cur Route
			curOK := false
			for _, cand := range inbox[asn] {
				if cand.hasLoop(asn) {
					continue
				}
				if !curOK || better(cand, cur) {
					cur, curOK = cand, true
				}
			}
			prev, prevOK := best[asn]
			if curOK != prevOK || (curOK && !routeEqual(prev, cur)) {
				changed = true
			}
			if curOK {
				best[asn] = cur
			} else {
				delete(best, asn)
			}
		}
		if !changed {
			break
		}
		if rounds > 4*len(asns)+8 {
			// Gao-Rexford-safe configurations converge in O(diameter);
			// this bound only trips on genuinely unsafe policy.
			panic(fmt.Sprintf("bgp: no convergence after %d rounds", rounds))
		}
	}
	st := &prefixState{best: best}
	s.states[p] = st
	s.Rounds = rounds
	return st
}

// RouteEqual reports whether two routes are identical in every
// attribute — the comparison the session-vs-fixpoint differentials use.
func RouteEqual(a, b Route) bool { return routeEqual(a, b) }

func routeEqual(a, b Route) bool {
	if a.Prefix != b.Prefix || a.LocalPref != b.LocalPref ||
		a.NoExport != b.NoExport || a.FromCustomer != b.FromCustomer ||
		len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}

// statesFor returns the converged states for the given prefixes,
// converging any that are missing. It takes the write lock only when
// something actually needs converging.
func (s *System) statesFor(prefixes []addr.Prefix) []*prefixState {
	for {
		s.mu.RLock()
		out := make([]*prefixState, len(prefixes))
		missing := false
		for i, p := range prefixes {
			st, ok := s.states[p]
			if !ok {
				missing = true
				break
			}
			out[i] = st
		}
		if !missing {
			s.mu.RUnlock()
			return out
		}
		s.mu.RUnlock()
		s.mu.Lock()
		for _, p := range prefixes {
			s.convergePrefixLocked(p)
		}
		s.mu.Unlock()
		// Loop: a mutator may have invalidated between Unlock and RLock.
	}
}

// BestRoute returns asn's selected route for exactly prefix p.
func (s *System) BestRoute(asn topology.ASN, p addr.Prefix) (Route, bool) {
	st := s.statesFor([]addr.Prefix{p})[0]
	r, ok := st.best[asn]
	return r, ok
}

// matchChain returns dst's longest-prefix match chain — every originated
// prefix containing dst, longest first.
func (s *System) matchChain(dst addr.V4) []addr.Prefix {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var chain []addr.Prefix
	s.index.Matches(dst, func(p addr.Prefix, _ int) bool {
		chain = append(chain, p)
		return true
	})
	return chain
}

// Lookup longest-prefix-matches dst in asn's routing: the most specific
// prefix on dst's match chain for which asn holds a route. Only the
// chain's prefixes are converged, never the whole table.
func (s *System) Lookup(asn topology.ASN, dst addr.V4) (Route, bool) {
	chain := s.matchChain(dst)
	for _, st := range s.statesFor(chain) {
		if r, ok := st.best[asn]; ok {
			return r, true
		}
	}
	return Route{}, false
}

// TableSize returns the number of prefixes in asn's loc-RIB (routing-state
// experiments, §3.2 scalability discussion).
func (s *System) TableSize(asn topology.ASN) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.convergeAllLocked()
	n := 0
	for _, st := range s.states {
		if _, ok := st.best[asn]; ok {
			n++
		}
	}
	return n
}

// ASPath returns the domain-level path a packet from inside `from`
// follows toward dst, starting with from itself. ok is false when from
// has no route.
func (s *System) ASPath(from topology.ASN, dst addr.V4) ([]topology.ASN, bool) {
	// Every AS on the walk resolves dst against the same match chain, so
	// one statesFor covers the whole hop-by-hop traversal.
	chain := s.matchChain(dst)
	states := s.statesFor(chain)
	lookup := func(asn topology.ASN) (Route, bool) {
		for _, st := range states {
			if r, ok := st.best[asn]; ok {
				return r, true
			}
		}
		return Route{}, false
	}

	r, ok := lookup(from)
	if !ok {
		return nil, false
	}
	path := append([]topology.ASN{from}, r.Path...)
	// Downstream ASes may match a more specific prefix than `from` did
	// (e.g. a NO_EXPORT host route covering an aggregate another AS
	// holds). Walk hop by hop and splice when the next AS diverges.
	maxLen := 2*len(s.net.ASNs()) + 2 // guards against pathological splicing
	for i := 0; i+1 < len(path) && len(path) <= maxLen; i++ {
		cur := path[i+1]
		if i+2 == len(path) {
			break
		}
		nr, ok := lookup(cur)
		if !ok {
			return path[:i+2], true
		}
		want := nr.NextHop()
		if want == -1 {
			return path[:i+2], true
		}
		if want != path[i+2] {
			// Splice in cur's actual continuation.
			path = append(path[:i+2], nr.Path...)
		}
	}
	return path, true
}

// LinksBetween returns every border link between adjacent domains a and
// b, oriented From-in-a and deterministically sorted. Empty when not
// adjacent.
func (s *System) LinksBetween(a, b topology.ASN) []topology.InterLink {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.linksBetweenLocked(a, b)
}

func (s *System) linksBetweenLocked(a, b topology.ASN) []topology.InterLink {
	for _, nb := range s.neighbors[a] {
		if nb.ASN == b && len(nb.Links) > 0 {
			links := append([]topology.InterLink(nil), nb.Links...)
			sort.Slice(links, func(i, j int) bool {
				if links[i].From != links[j].From {
					return links[i].From < links[j].From
				}
				return links[i].To < links[j].To
			})
			return links
		}
	}
	return nil
}

// LinkBetween returns the deterministic first border link between
// adjacent domains a and b, oriented From-in-a. ok is false when they are
// not adjacent. Forwarding walks prefer LinksBetween plus hot-potato
// selection; this remains for callers needing any single representative
// link.
func (s *System) LinkBetween(a, b topology.ASN) (topology.InterLink, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	links := s.linksBetweenLocked(a, b)
	if len(links) == 0 {
		return topology.InterLink{}, false
	}
	return links[0], true
}
