package bgpvn

import (
	"errors"
	"testing"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/forward"
	"github.com/evolvable-net/evolve/internal/routing/bgp"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/underlay"
	"github.com/evolvable-net/evolve/internal/vnbone"
)

type env struct {
	net  *topology.Network
	igp  *underlay.View
	svc  *anycast.Service
	fwd  *forward.Engine
	dep  *anycast.Deployment
	bone *vnbone.Bone
	sys  *System
}

func buildEnv(t *testing.T, n *topology.Network, members []topology.RouterID) *env {
	t.Helper()
	igp := underlay.NewView(n)
	bgpSys := bgp.NewSystem(n)
	svc := anycast.NewService(n, bgpSys, igp)
	dep, err := svc.DeployOption1(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		svc.AddMember(dep, m)
	}
	bone, err := vnbone.Build(svc, igp, dep, vnbone.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fwd := forward.NewEngine(n, bgpSys, igp)
	return &env{net: n, igp: igp, svc: svc, fwd: fwd, dep: dep, bone: bone, sys: New(bone, fwd, n)}
}

// figure3 builds the world of the paper's Figure 3: participant domains M
// and O, destination client C in non-participant domain NC, where M's
// underlay path to NC transits O.
func figure3(t *testing.T) (*env, topology.RouterID, *topology.Host) {
	t.Helper()
	b := topology.NewBuilder()
	dM := b.AddDomain("M")
	dO := b.AddDomain("O")
	dNC := b.AddDomain("NC")
	rM := b.AddRouters(dM, 2)
	rO := b.AddRouters(dO, 2)
	rNC := b.AddRouter(dNC, "")
	b.IntraLink(rM[0], rM[1], 1)
	b.IntraLink(rO[0], rO[1], 1)
	b.Peer(rM[1], rO[0], 10)
	b.Provide(rO[1], rNC, 10)
	c := b.AddHost(dNC, rNC, "C", 1)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// X = M's member (ingress); Y = O's member.
	e := buildEnv(t, n, []topology.RouterID{rM[0], rO[1]})
	return e, rM[0], c
}

func TestFigure3ExitEarly(t *testing.T) {
	e, x, c := figure3(t)
	eg, err := e.sys.SelectEgress(x, c.Addr, ExitEarly)
	if err != nil {
		t.Fatal(err)
	}
	if eg.Member != x {
		t.Errorf("exit-early egress = %d, want ingress %d", eg.Member, x)
	}
	if eg.BoneCost != 0 || len(eg.BonePath) != 1 {
		t.Errorf("exit-early path = %v cost %d", eg.BonePath, eg.BoneCost)
	}
}

func TestFigure3PathInformed(t *testing.T) {
	e, x, c := figure3(t)
	y := e.dep.MembersIn(e.net.DomainByName("O").ASN)[0]
	eg, err := e.sys.SelectEgress(x, c.Addr, PathInformed)
	if err != nil {
		t.Fatal(err)
	}
	if eg.Member != y {
		t.Errorf("path-informed egress = %d, want O's member %d", eg.Member, y)
	}
	if len(eg.BonePath) < 2 || eg.BonePath[0] != x || eg.BonePath[len(eg.BonePath)-1] != y {
		t.Errorf("bone path = %v", eg.BonePath)
	}
	// The informed exit shortens the remaining underlay distance: from Y
	// the packet reaches C's domain in one AS hop instead of two from X.
	dFromX, _ := e.fwd.DomainDistance(e.net.DomainOf(x), c.Addr)
	dFromY, _ := e.fwd.DomainDistance(e.net.DomainOf(y), c.Addr)
	if dFromY >= dFromX {
		t.Errorf("informed egress did not reduce domain distance: %d → %d", dFromX, dFromY)
	}
}

func TestFigure3TotalCostImproves(t *testing.T) {
	// The paper's claim: riding the vN-Bone further (more vN hops) yields
	// a better overall path when the bone is congruent. Verify the
	// informed policy's total underlay cost (bone + tail) is no worse
	// than exit-early's.
	e, x, c := figure3(t)
	var costs [2]int64
	for i, pol := range []EgressPolicy{ExitEarly, PathInformed} {
		eg, err := e.sys.SelectEgress(x, c.Addr, pol)
		if err != nil {
			t.Fatal(err)
		}
		tail, err := e.fwd.FromRouter(eg.Member, c.Addr)
		if err != nil {
			t.Fatal(err)
		}
		costs[i] = eg.BoneCost + tail.Cost
	}
	if costs[1] > costs[0] {
		t.Errorf("path-informed total %d worse than exit-early %d", costs[1], costs[0])
	}
}

// figure4 builds the world of the paper's Figure 4: participants A, B, C
// (bone: A–B–C via peering); non-participants M, N, Z. A's underlay path
// to Z is long (A→M→N→Z); C sits next to Z.
func figure4(t *testing.T) (*env, topology.RouterID, *topology.Host) {
	t.Helper()
	b := topology.NewBuilder()
	dA := b.AddDomain("A")
	dB := b.AddDomain("B")
	dC := b.AddDomain("C")
	dM := b.AddDomain("M")
	dN := b.AddDomain("N")
	dZ := b.AddDomain("Z")
	rA := b.AddRouter(dA, "")
	rB := b.AddRouter(dB, "")
	rC := b.AddRouter(dC, "")
	rM := b.AddRouter(dM, "")
	rN := b.AddRouter(dN, "")
	rZ := b.AddRouter(dZ, "")
	// Bone substrate: A–B–C peerings.
	b.Peer(rA, rB, 10)
	b.Peer(rB, rC, 10)
	// Underlay to Z from A: M provides A, N customer of M, Z customer of N.
	b.Provide(rM, rA, 10)
	b.Provide(rM, rN, 10)
	b.Provide(rN, rZ, 10)
	// C provides Z directly.
	b.Provide(rC, rZ, 10)
	z := b.AddHost(dZ, rZ, "hz", 1)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := buildEnv(t, n, []topology.RouterID{rA, rB, rC})
	return e, rA, z
}

func TestFigure4WithoutProxyExitsAtA(t *testing.T) {
	e, a, z := figure4(t)
	// Path-informed sees A's own underlay path A→M→N→Z, which contains no
	// other participant, so it exits at A — exactly the figure's "without
	// advertising-by-proxy" trajectory.
	eg, err := e.sys.SelectEgress(a, z.Addr, PathInformed)
	if err != nil {
		t.Fatal(err)
	}
	if eg.Member != a {
		t.Errorf("egress = %d, want ingress %d", eg.Member, a)
	}
}

func TestFigure4ProxyRoutesViaC(t *testing.T) {
	e, a, z := figure4(t)
	cMember := e.dep.MembersIn(e.net.DomainByName("C").ASN)[0]
	eg, err := e.sys.SelectEgress(a, z.Addr, ProxyInformed)
	if err != nil {
		t.Fatal(err)
	}
	if eg.Member != cMember {
		t.Errorf("proxy egress = %d, want C's member %d", eg.Member, cMember)
	}
	// Bone path is A → B → C.
	bMember := e.dep.MembersIn(e.net.DomainByName("B").ASN)[0]
	if len(eg.BonePath) != 3 || eg.BonePath[1] != bMember {
		t.Errorf("bone path = %v, want A→B→C", eg.BonePath)
	}
	// And the advertised remaining distance from C is 1 AS hop vs 3 from A.
	dA, _ := e.fwd.DomainDistance(e.net.DomainByName("A").ASN, z.Addr)
	dC, _ := e.fwd.DomainDistance(e.net.DomainByName("C").ASN, z.Addr)
	if dA != 3 || dC != 1 {
		t.Errorf("domain distances: A=%d C=%d", dA, dC)
	}
}

func TestRouteNative(t *testing.T) {
	e, x, _ := figure3(t)
	// O's native block: a destination inside it routes to O's member.
	oASN := e.net.DomainByName("O").ASN
	y := e.dep.MembersIn(oASN)[0]
	pool := addr.NewVNPool(addr.DomainVNPrefix(int(oASN)))
	dst, _ := pool.Next()
	eg, err := e.sys.RouteNative(x, dst)
	if err != nil {
		t.Fatal(err)
	}
	if eg.Member != y {
		t.Errorf("native egress = %d, want %d", eg.Member, y)
	}
	if len(eg.BonePath) < 2 {
		t.Errorf("bone path = %v", eg.BonePath)
	}
	// Local native destination: egress in own domain at zero bone cost.
	mASN := e.net.DomainByName("M").ASN
	localPool := addr.NewVNPool(addr.DomainVNPrefix(int(mASN)))
	localDst, _ := localPool.Next()
	eg, err = e.sys.RouteNative(x, localDst)
	if err != nil || eg.Member != x || eg.BoneCost != 0 {
		t.Errorf("local native egress = %+v err %v", eg, err)
	}
}

func TestRouteNativeNoRoute(t *testing.T) {
	e, x, _ := figure3(t)
	// A native address of a domain that never joined.
	stranger := addr.DomainVNPrefix(9999)
	if _, err := e.sys.RouteNative(x, stranger.Addr); !errors.Is(err, ErrNoVNRoute) {
		t.Errorf("err = %v", err)
	}
	// Self-addresses are not native either.
	if _, err := e.sys.RouteNative(x, addr.SelfAddress(1)); !errors.Is(err, ErrNoVNRoute) {
		t.Errorf("self addr err = %v", err)
	}
}

func TestAdvertiseNativeHostRoute(t *testing.T) {
	e, x, c := figure3(t)
	// O agrees to carry a /128 for C's temporary address (the paper's
	// anycast-advertised endhost option, which we support but don't
	// default to).
	oASN := e.net.DomainByName("O").ASN
	self := addr.SelfAddress(c.Addr)
	e.sys.AdvertiseNative(addr.HostVNPrefix(self), oASN)
	eg, err := e.sys.RouteNative(x, self)
	if err != nil {
		t.Fatal(err)
	}
	if e.net.DomainOf(eg.Member) != oASN {
		t.Errorf("host-route egress in %d", e.net.DomainOf(eg.Member))
	}
}

func TestParticipates(t *testing.T) {
	e, _, _ := figure3(t)
	if !e.sys.Participates(e.net.DomainByName("M").ASN) {
		t.Error("M should participate")
	}
	if e.sys.Participates(e.net.DomainByName("NC").ASN) {
		t.Error("NC should not participate")
	}
}

func TestSelectEgressUnknownPolicy(t *testing.T) {
	e, x, c := figure3(t)
	if _, err := e.sys.SelectEgress(x, c.Addr, EgressPolicy(99)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestProxyFallsBackWhenNoProxyHasRoute(t *testing.T) {
	e, x, _ := figure3(t)
	// A destination no AS routes to: proxies advertise nothing, so the
	// packet exits at the ingress (and the underlay will report the
	// failure authoritatively).
	eg, err := e.sys.SelectEgress(x, addr.MustParseV4("250.0.0.1"), ProxyInformed)
	if err != nil {
		t.Fatal(err)
	}
	if eg.Member != x {
		t.Errorf("egress = %d, want ingress fallback", eg.Member)
	}
}
