// Package bgpvn implements routing *over* the vN-Bone (§3.3.2): reaching
// natively addressed IPvN destinations via the prefixes participant
// domains advertise into the IPvN routing fabric, and — the subtle case —
// selecting an egress IPvN router for destinations in non-participant
// domains (self-addressed hosts). Three egress policies reproduce the
// paper's design walk:
//
//   - ExitEarly ("only BGPvN", Figure 3 left): the vN routing fabric knows
//     nothing about the destination, so the packet exits at its ingress
//     and rides plain IPv(N-1) the rest of the way.
//   - PathInformed ("BGPvN + BGPv(N-1)", Figure 3 right): the ingress
//     consults its domain's imported BGPv(N-1) tables, finds the
//     domain-level path toward the destination, and hands the packet
//     across the vN-Bone to a member in the last participant domain along
//     that path.
//   - ProxyInformed ("advertising-by-proxy", Figure 4): every participant
//     border router advertises its domain's BGPv(N-1) distance to the
//     destination's domain into BGPvN; the ingress picks the member with
//     the smallest advertised remaining distance (ties: cheapest bone
//     path), even when that member is nowhere near the ingress's own
//     underlay path.
//
// The paper deliberately leaves the BGPvN algorithm unconstrained ("BGPvN
// need not strictly resemble today's BGP"); this implementation uses
// shortest paths over the virtual topology, which every concrete IPvN
// could refine.
package bgpvn

import (
	"errors"
	"fmt"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/forward"
	"github.com/evolvable-net/evolve/internal/graph"
	"github.com/evolvable-net/evolve/internal/rib"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/vnbone"
)

// EgressPolicy selects how an egress router is chosen for self-addressed
// destinations.
type EgressPolicy int

const (
	// PathInformed exits at the last participant domain along the
	// ingress domain's BGPv(N-1) path to the destination. It is the
	// paper's recommended design (Figure 3 right) and the zero value, so
	// an unset Config gets it by default.
	PathInformed EgressPolicy = iota
	// ExitEarly exits the vN-Bone at the ingress router ("only BGPvN").
	ExitEarly
	// ProxyInformed exits at the member whose domain advertises the
	// smallest BGPv(N-1) distance to the destination's domain.
	ProxyInformed
)

func (p EgressPolicy) String() string {
	switch p {
	case ExitEarly:
		return "exit-early"
	case PathInformed:
		return "path-informed"
	default:
		return "proxy-informed"
	}
}

// Errors.
var (
	// ErrNoVNRoute: no native prefix covers the IPvN destination.
	ErrNoVNRoute = errors.New("bgpvn: no IPvN route to destination")
	// ErrUnreachableOnBone: the selected egress is not reachable from the
	// ingress over the virtual topology.
	ErrUnreachableOnBone = errors.New("bgpvn: egress unreachable on vN-Bone")
)

// Egress describes a vN-Bone traversal decision.
type Egress struct {
	// Member is the router where the packet leaves the vN-Bone.
	Member topology.RouterID
	// BonePath is the member-level path from ingress to Member.
	BonePath []topology.RouterID
	// BoneCost is the underlay cost of BonePath.
	BoneCost int64
	// Policy records which policy produced the decision.
	Policy EgressPolicy
}

// System answers routing questions over one constructed bone.
type System struct {
	bone *vnbone.Bone
	fwd  *forward.Engine
	net  *topology.Network

	// natives maps advertised IPvN prefixes to their origin domain.
	natives rib.TableVN[topology.ASN]
	// participants caches membership by domain.
	participants map[topology.ASN]bool
}

// New builds the BGPvN view of a bone. Every participant domain
// advertises its native IPvN block into the fabric.
func New(bone *vnbone.Bone, fwd *forward.Engine, net *topology.Network) *System {
	s := &System{
		bone:         bone,
		fwd:          fwd,
		net:          net,
		participants: map[topology.ASN]bool{},
	}
	seen := map[topology.ASN]bool{}
	for _, m := range bone.Members() {
		asn := net.DomainOf(m)
		s.participants[asn] = true
		if !seen[asn] {
			seen[asn] = true
			s.natives.Insert(addr.DomainVNPrefix(int(asn)), asn)
		}
	}
	return s
}

// AdvertiseNative injects an additional IPvN prefix originated by asn
// (e.g. a host /128 for an endhost whose temporary address a participant
// agreed to carry).
func (s *System) AdvertiseNative(p addr.VNPrefix, asn topology.ASN) {
	s.natives.Insert(p, asn)
}

// Participates reports whether a domain has vN-Bone presence.
func (s *System) Participates(asn topology.ASN) bool { return s.participants[asn] }

// RouteNative routes from an ingress member to a natively addressed IPvN
// destination: longest-prefix match in the IPvN fabric, then cheapest bone
// path to a member of the origin domain.
func (s *System) RouteNative(ingress topology.RouterID, dst addr.VN) (Egress, error) {
	asn, _, ok := s.natives.Lookup(dst)
	if !ok {
		return Egress{}, ErrNoVNRoute
	}
	best := Egress{Member: -1, BoneCost: graph.Inf}
	for _, m := range s.bone.Members() {
		if s.net.DomainOf(m) != asn {
			continue
		}
		if d := s.bone.Dist(ingress, m); d < best.BoneCost {
			best = Egress{Member: m, BoneCost: d}
		}
	}
	if best.Member < 0 || best.BoneCost >= graph.Inf {
		return Egress{}, ErrUnreachableOnBone
	}
	best.BonePath = s.bone.Path(ingress, best.Member)
	return best, nil
}

// SelectEgress chooses where a packet for a self-addressed destination
// (underlay address dstV4) leaves the vN-Bone.
func (s *System) SelectEgress(ingress topology.RouterID, dstV4 addr.V4, policy EgressPolicy) (Egress, error) {
	switch policy {
	case ExitEarly:
		return Egress{
			Member:   ingress,
			BonePath: []topology.RouterID{ingress},
			Policy:   ExitEarly,
		}, nil
	case PathInformed:
		return s.pathInformed(ingress, dstV4)
	case ProxyInformed:
		return s.proxyInformed(ingress, dstV4)
	default:
		return Egress{}, fmt.Errorf("bgpvn: unknown egress policy %d", policy)
	}
}

// pathInformed walks the ingress domain's BGPv(N-1) AS path toward the
// destination and exits at the furthest participant domain on it.
func (s *System) pathInformed(ingress topology.RouterID, dstV4 addr.V4) (Egress, error) {
	asPath, ok := s.fwd.DomainPath(s.net.DomainOf(ingress), dstV4)
	if !ok {
		// No underlay route at all: exiting early lets the underlay
		// produce the authoritative error.
		return Egress{Member: ingress, BonePath: []topology.RouterID{ingress}, Policy: PathInformed}, nil
	}
	lastParticipant := topology.ASN(-1)
	for _, asn := range asPath {
		if s.participants[asn] {
			lastParticipant = asn
		}
	}
	if lastParticipant == -1 || lastParticipant == s.net.DomainOf(ingress) {
		return Egress{Member: ingress, BonePath: []topology.RouterID{ingress}, Policy: PathInformed}, nil
	}
	best := Egress{Member: -1, BoneCost: graph.Inf, Policy: PathInformed}
	for _, m := range s.bone.Members() {
		if s.net.DomainOf(m) != lastParticipant {
			continue
		}
		if d := s.bone.Dist(ingress, m); d < best.BoneCost {
			best = Egress{Member: m, BoneCost: d, Policy: PathInformed}
		}
	}
	if best.Member < 0 || best.BoneCost >= graph.Inf {
		// The bone cannot reach that domain (partition): degrade to
		// exit-early rather than blackholing.
		return Egress{Member: ingress, BonePath: []topology.RouterID{ingress}, Policy: PathInformed}, nil
	}
	best.BonePath = s.bone.Path(ingress, best.Member)
	return best, nil
}

// proxyInformed implements Figure 4: minimize the advertised BGPv(N-1)
// distance from the egress domain to the destination, breaking ties by
// bone cost, then member id.
func (s *System) proxyInformed(ingress topology.RouterID, dstV4 addr.V4) (Egress, error) {
	bestDist := int(^uint(0) >> 1)
	best := Egress{Member: -1, BoneCost: graph.Inf, Policy: ProxyInformed}
	for _, m := range s.bone.Members() {
		adv, ok := s.fwd.DomainDistance(s.net.DomainOf(m), dstV4)
		if !ok {
			continue // this proxy has no route to advertise
		}
		bd := s.bone.Dist(ingress, m)
		if bd >= graph.Inf {
			continue
		}
		if adv < bestDist || (adv == bestDist && bd < best.BoneCost) ||
			(adv == bestDist && bd == best.BoneCost && m < best.Member) {
			bestDist = adv
			best = Egress{Member: m, BoneCost: bd, Policy: ProxyInformed}
		}
	}
	if best.Member < 0 {
		return Egress{Member: ingress, BonePath: []topology.RouterID{ingress}, Policy: ProxyInformed}, nil
	}
	best.BonePath = s.bone.Path(ingress, best.Member)
	return best, nil
}
