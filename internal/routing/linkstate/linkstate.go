// Package linkstate implements an OSPF-like intra-domain link-state
// protocol with the two anycast extensions described in §3.2 of the paper:
//
//  1. an IPvN router advertises a high-cost "link" to the anycast address
//     (the high cost prevents routers from routing *through* the address);
//  2. alternatively, a router explicitly lists its anycast addresses in its
//     ordinary advertisement, which makes anycast resolution a lookup and
//     lets IPvN routers trivially discover one another.
//
// Both modes are implemented; both resolve an anycast address to the
// closest member. Because link-state databases are domain-global, member
// discovery works in either mode — the paper's observation that discovery
// is hard applies to distance-vector (package distvec), not here.
package linkstate

import (
	"sort"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/graph"
	"github.com/evolvable-net/evolve/internal/netsim"
)

// Mode selects which anycast extension a domain runs.
type Mode int

const (
	// ModeHighCostLink advertises anycast membership as a high-cost link
	// to a virtual node representing the anycast address.
	ModeHighCostLink Mode = iota
	// ModeExplicitList lists anycast addresses inside the router LSA.
	ModeExplicitList
)

// HighCost is the cost of the virtual anycast link in ModeHighCostLink. It
// exceeds any realistic intra-domain path cost, so no shortest path ever
// transits the virtual node.
const HighCost int64 = 1 << 30

// Link is one adjacency in an LSA.
type Link struct {
	To   int
	Cost int64
}

// LSA is a router's link-state advertisement.
type LSA struct {
	Origin  int
	Seq     uint64
	Links   []Link
	Anycast []addr.V4 // ModeExplicitList: addresses this router serves
	// AnycastLinks carries the ModeHighCostLink virtual adjacencies.
	AnycastLinks []addr.V4
}

// Router is one link-state speaker. Create with NewRouter, then Start; the
// router converges as the netsim engine runs.
type Router struct {
	id      int
	mode    Mode
	fabric  *netsim.Fabric
	nbrs    []Link
	anycast []addr.V4

	seq  uint64
	lsdb map[int]*LSA

	// spfDirty marks the cached SPF stale.
	spfDirty bool
	spt      *graph.SPT
	idx      map[int]int // router id → dense index
	rev      []int       // dense index → router id
}

// NewRouter creates a router with the given neighbour adjacencies.
func NewRouter(id int, mode Mode, fabric *netsim.Fabric, neighbors []Link) *Router {
	r := &Router{
		id:       id,
		mode:     mode,
		fabric:   fabric,
		nbrs:     append([]Link(nil), neighbors...),
		lsdb:     map[int]*LSA{},
		spfDirty: true,
	}
	fabric.Attach(id, r)
	return r
}

// ID returns the router's identifier.
func (r *Router) ID() int { return r.id }

// ServeAnycast adds an anycast address this router accepts (i.e. the
// router is an IPvN router for that deployment) and re-originates its LSA.
func (r *Router) ServeAnycast(a addr.V4) {
	for _, x := range r.anycast {
		if x == a {
			return
		}
	}
	r.anycast = append(r.anycast, a)
	r.originate()
}

// WithdrawAnycast removes an anycast address and re-originates.
func (r *Router) WithdrawAnycast(a addr.V4) {
	out := r.anycast[:0]
	for _, x := range r.anycast {
		if x != a {
			out = append(out, x)
		}
	}
	r.anycast = out
	r.originate()
}

// Start originates the router's first LSA and floods it.
func (r *Router) Start() { r.originate() }

// SetLinkCost updates (or adds) the adjacency to neighbor and
// re-originates. A cost < 0 removes the adjacency (link failure).
func (r *Router) SetLinkCost(neighbor int, cost int64) {
	out := r.nbrs[:0]
	for _, l := range r.nbrs {
		if l.To != neighbor {
			out = append(out, l)
		}
	}
	r.nbrs = out
	if cost >= 0 {
		r.nbrs = append(r.nbrs, Link{To: neighbor, Cost: cost})
	}
	r.originate()
}

func (r *Router) originate() {
	r.seq++
	lsa := &LSA{
		Origin: r.id,
		Seq:    r.seq,
		Links:  append([]Link(nil), r.nbrs...),
	}
	switch r.mode {
	case ModeExplicitList:
		lsa.Anycast = append([]addr.V4(nil), r.anycast...)
	case ModeHighCostLink:
		lsa.AnycastLinks = append([]addr.V4(nil), r.anycast...)
	}
	r.install(lsa)
	r.flood(lsa, -1)
}

func (r *Router) install(lsa *LSA) bool {
	cur, ok := r.lsdb[lsa.Origin]
	if ok && cur.Seq >= lsa.Seq {
		return false
	}
	r.lsdb[lsa.Origin] = lsa
	r.spfDirty = true
	return true
}

func (r *Router) flood(lsa *LSA, except int) {
	for _, l := range r.nbrs {
		if l.To == except {
			continue
		}
		r.fabric.Send(r.id, l.To, lsa)
	}
}

// Receive implements netsim.Handler: standard flooding with sequence
// numbers.
func (r *Router) Receive(from int, msg any) {
	lsa, ok := msg.(*LSA)
	if !ok {
		return
	}
	if r.install(lsa) {
		r.flood(lsa, from)
	}
}

// LSDBSize returns the number of LSAs held (for state-size experiments).
func (r *Router) LSDBSize() int { return len(r.lsdb) }

func (r *Router) recompute() {
	if !r.spfDirty {
		return
	}
	// Build a dense graph over the routers present in the LSDB. Links are
	// used only if both endpoints advertise them (two-way check), matching
	// OSPF behaviour.
	ids := make([]int, 0, len(r.lsdb))
	for id := range r.lsdb {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	r.idx = make(map[int]int, len(ids))
	r.rev = ids
	for i, id := range ids {
		r.idx[id] = i
	}
	g := graph.New(len(ids))
	for _, lsa := range r.lsdb {
		u := r.idx[lsa.Origin]
		for _, l := range lsa.Links {
			vi, ok := r.idx[l.To]
			if !ok {
				continue
			}
			if !r.twoWay(l.To, lsa.Origin) {
				continue
			}
			g.AddEdge(u, vi, l.Cost)
		}
	}
	self, ok := r.idx[r.id]
	if !ok {
		r.spt = nil
		r.spfDirty = false
		return
	}
	r.spt = g.Dijkstra(self)
	r.spfDirty = false
}

func (r *Router) twoWay(from, to int) bool {
	lsa, ok := r.lsdb[from]
	if !ok {
		return false
	}
	for _, l := range lsa.Links {
		if l.To == to {
			return true
		}
	}
	return false
}

// DistanceTo returns the SPF cost from this router to dst, or graph.Inf.
func (r *Router) DistanceTo(dst int) int64 {
	r.recompute()
	if r.spt == nil {
		return graph.Inf
	}
	i, ok := r.idx[dst]
	if !ok {
		return graph.Inf
	}
	return r.spt.Dist[i]
}

// NextHopTo returns the first hop toward dst, or -1 when unreachable.
func (r *Router) NextHopTo(dst int) int {
	r.recompute()
	if r.spt == nil {
		return -1
	}
	i, ok := r.idx[dst]
	if !ok {
		return -1
	}
	nh := r.spt.NextHop(i)
	if nh < 0 {
		return -1
	}
	return r.rev[nh]
}

// AnycastMembers returns the routers advertising a, in id order. This is
// the §3.2 discovery property: within a link-state domain, every IPvN
// router can identify every other.
func (r *Router) AnycastMembers(a addr.V4) []int {
	var out []int
	for id, lsa := range r.lsdb {
		list := lsa.Anycast
		if r.mode == ModeHighCostLink {
			list = lsa.AnycastLinks
		}
		for _, x := range list {
			if x == a {
				out = append(out, id)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// ResolveAnycast returns the closest member of the anycast group a, the
// SPF distance to it, and the first hop toward it. Self-membership
// resolves at distance 0. ok is false when no member exists.
//
// In ModeHighCostLink the effective advertised cost through the virtual
// link is member-distance + HighCost for every member, so the argmin
// member is identical in both modes; we therefore resolve by distance to
// members directly, which is what a real SPF over the virtual node yields.
func (r *Router) ResolveAnycast(a addr.V4) (member int, dist int64, nextHop int, ok bool) {
	members := r.AnycastMembers(a)
	if len(members) == 0 {
		return 0, 0, -1, false
	}
	best, bestDist := -1, int64(graph.Inf)
	for _, m := range members {
		var d int64
		if m == r.id {
			d = 0
		} else {
			d = r.DistanceTo(m)
		}
		if d < bestDist {
			best, bestDist = m, d
		}
	}
	if best < 0 || bestDist >= graph.Inf {
		return 0, 0, -1, false
	}
	if best == r.id {
		return best, 0, r.id, true
	}
	return best, bestDist, r.NextHopTo(best), true
}

// Domain wires up and runs all routers of one domain. It is a convenience
// for experiments: construct, Start, then run the engine to quiescence.
type Domain struct {
	Routers map[int]*Router
}

// NewDomain creates one Router per node of the given adjacency list.
// adjacency maps router id → neighbour links.
func NewDomain(fabric *netsim.Fabric, mode Mode, adjacency map[int][]Link) *Domain {
	d := &Domain{Routers: map[int]*Router{}}
	ids := make([]int, 0, len(adjacency))
	for id := range adjacency {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		d.Routers[id] = NewRouter(id, mode, fabric, adjacency[id])
		for _, l := range adjacency[id] {
			fabric.Connect(id, l.To, netsim.Time(l.Cost))
		}
	}
	return d
}

// Start floods every router's initial LSA.
func (d *Domain) Start() {
	ids := make([]int, 0, len(d.Routers))
	for id := range d.Routers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		d.Routers[id].Start()
	}
}
