package linkstate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/graph"
	"github.com/evolvable-net/evolve/internal/netsim"
)

// randomConnected builds a random connected undirected weighted graph as
// both an adjacency map (for the protocol) and a graph.Graph (oracle).
func randomConnected(seed int64, n int) (map[int][]Link, *graph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	adj := map[int][]Link{}
	g := graph.New(n)
	addEdge := func(a, b int, w int64) {
		adj[a] = append(adj[a], Link{To: b, Cost: w})
		adj[b] = append(adj[b], Link{To: a, Cost: w})
		g.AddBiEdge(a, b, w)
	}
	// Spanning chain guarantees connectivity.
	for i := 0; i+1 < n; i++ {
		addEdge(i, i+1, 1+rng.Int63n(20))
	}
	// Random chords.
	for i := 0; i < n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b && !g.HasEdge(a, b) {
			addEdge(a, b, 1+rng.Int63n(20))
		}
	}
	return adj, g
}

// TestProtocolMatchesDijkstraOracle: after flooding converges, every
// router's distance to every other router equals the oracle's shortest
// path — the protocol computes exactly what the closed-form views in
// internal/underlay assume it does.
func TestProtocolMatchesDijkstraOracle(t *testing.T) {
	f := func(seed int64) bool {
		const n = 12
		adj, g := randomConnected(seed, n)
		eng := netsim.NewEngine()
		fab := netsim.NewFabric(eng)
		dom := NewDomain(fab, ModeExplicitList, adj)
		dom.Start()
		eng.Run(0)
		for src := 0; src < n; src++ {
			spt := g.Dijkstra(src)
			for dst := 0; dst < n; dst++ {
				if dom.Routers[src].DistanceTo(dst) != spt.Dist[dst] {
					t.Logf("seed %d: %d→%d protocol %d oracle %d",
						seed, src, dst, dom.Routers[src].DistanceTo(dst), spt.Dist[dst])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestAnycastResolutionIsArgminOracle: for random member sets, the
// protocol's anycast resolution equals the closed-form argmin over
// members of the oracle's distances.
func TestAnycastResolutionIsArgminOracle(t *testing.T) {
	f := func(seed int64) bool {
		const n = 10
		adj, g := randomConnected(seed, n)
		eng := netsim.NewEngine()
		fab := netsim.NewFabric(eng)
		dom := NewDomain(fab, ModeHighCostLink, adj)
		dom.Start()
		eng.Run(0)
		a, err := addr.Option1Address(0)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		var members []int
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				members = append(members, i)
				dom.Routers[i].ServeAnycast(a)
			}
		}
		eng.Run(0)
		for src := 0; src < n; src++ {
			member, dist, _, ok := dom.Routers[src].ResolveAnycast(a)
			if len(members) == 0 {
				if ok {
					return false
				}
				continue
			}
			spt := g.Dijkstra(src)
			best, bestDist := -1, int64(graph.Inf)
			for _, m := range members {
				if spt.Dist[m] < bestDist {
					best, bestDist = m, spt.Dist[m]
				}
			}
			if !ok || dist != bestDist {
				return false
			}
			// Member identity may differ only on exact ties.
			if member != best && dist != spt.Dist[member] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestReconvergenceAfterRandomFailure: cut a random non-bridge edge; the
// protocol's distances must match the oracle's on the mutated graph.
func TestReconvergenceAfterRandomFailure(t *testing.T) {
	f := func(seed int64) bool {
		const n = 10
		adj, g := randomConnected(seed, n)
		eng := netsim.NewEngine()
		fab := netsim.NewFabric(eng)
		dom := NewDomain(fab, ModeExplicitList, adj)
		dom.Start()
		eng.Run(0)
		// Cut a chord (never the spanning chain) so connectivity holds.
		rng := rand.New(rand.NewSource(seed ^ 0xfa11))
		var cutA, cutB int = -1, -1
		for tries := 0; tries < 50; tries++ {
			a := rng.Intn(n)
			nbrs := adj[a]
			if len(nbrs) == 0 {
				continue
			}
			b := nbrs[rng.Intn(len(nbrs))].To
			if b == a+1 || a == b+1 {
				continue // spanning chain edge
			}
			cutA, cutB = a, b
			break
		}
		if cutA < 0 {
			return true // no chord to cut; vacuous
		}
		dom.Routers[cutA].SetLinkCost(cutB, -1)
		dom.Routers[cutB].SetLinkCost(cutA, -1)
		fab.FailLink(cutA, cutB)
		eng.Run(0)
		g.RemoveBiEdge(cutA, cutB)
		for src := 0; src < n; src++ {
			spt := g.Dijkstra(src)
			for dst := 0; dst < n; dst++ {
				if dom.Routers[src].DistanceTo(dst) != spt.Dist[dst] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
