package linkstate

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/graph"
	"github.com/evolvable-net/evolve/internal/netsim"
)

// buildDomain wires a domain from an undirected edge list and runs it to
// convergence.
func buildDomain(t *testing.T, mode Mode, edges [][3]int64) (*Domain, *netsim.Engine) {
	t.Helper()
	adj := map[int][]Link{}
	for _, e := range edges {
		a, b, c := int(e[0]), int(e[1]), e[2]
		adj[a] = append(adj[a], Link{To: b, Cost: c})
		adj[b] = append(adj[b], Link{To: a, Cost: c})
	}
	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	d := NewDomain(fab, mode, adj)
	d.Start()
	eng.Run(0)
	return d, eng
}

var diamond = [][3]int64{
	// 0 —1— 1 —1— 3, 0 —10— 2 —1— 3
	{0, 1, 1}, {1, 3, 1}, {0, 2, 10}, {2, 3, 1},
}

func TestSPFDistances(t *testing.T) {
	d, _ := buildDomain(t, ModeExplicitList, diamond)
	r0 := d.Routers[0]
	if got := r0.DistanceTo(3); got != 2 {
		t.Errorf("dist 0→3 = %d, want 2", got)
	}
	if got := r0.DistanceTo(2); got != 3 {
		t.Errorf("dist 0→2 = %d, want 3 (via 1,3)", got)
	}
	if nh := r0.NextHopTo(3); nh != 1 {
		t.Errorf("nexthop 0→3 = %d, want 1", nh)
	}
	if r0.DistanceTo(99) < graph.Inf {
		t.Error("unknown router should be unreachable")
	}
}

func TestAllRoutersAgree(t *testing.T) {
	d, _ := buildDomain(t, ModeExplicitList, diamond)
	// Each router's view of the distance 0→3 computed from its own LSDB
	// must agree (same LSDB after flooding).
	for id, r := range d.Routers {
		if r.LSDBSize() != 4 {
			t.Errorf("router %d LSDB size = %d", id, r.LSDBSize())
		}
	}
	if d.Routers[3].DistanceTo(0) != d.Routers[0].DistanceTo(3) {
		t.Error("asymmetric distances in symmetric topology")
	}
}

func testAnycastClosest(t *testing.T, mode Mode) {
	t.Helper()
	d, eng := buildDomain(t, mode, diamond)
	a, _ := addr.Option1Address(0)
	// Members: router 1 (dist 1 from 0) and router 2 (dist 3 from 0).
	d.Routers[1].ServeAnycast(a)
	d.Routers[2].ServeAnycast(a)
	eng.Run(0)

	member, dist, nh, ok := d.Routers[0].ResolveAnycast(a)
	if !ok || member != 1 || dist != 1 || nh != 1 {
		t.Errorf("resolve from 0 = member %d dist %d nh %d ok %v", member, dist, nh, ok)
	}
	// Router 3 is at distance 1 from both members; tie broken to lower id.
	member, dist, _, ok = d.Routers[3].ResolveAnycast(a)
	if !ok || member != 1 || dist != 1 {
		t.Errorf("resolve from 3 = member %d dist %d ok %v", member, dist, ok)
	}
	// A member resolves to itself at distance 0.
	member, dist, nh, ok = d.Routers[2].ResolveAnycast(a)
	if !ok || member != 2 || dist != 0 || nh != 2 {
		t.Errorf("self resolve = member %d dist %d nh %d ok %v", member, dist, nh, ok)
	}
}

func TestAnycastClosestExplicitList(t *testing.T) { testAnycastClosest(t, ModeExplicitList) }
func TestAnycastClosestHighCostLink(t *testing.T) { testAnycastClosest(t, ModeHighCostLink) }

func TestAnycastMemberDiscovery(t *testing.T) {
	for _, mode := range []Mode{ModeExplicitList, ModeHighCostLink} {
		d, eng := buildDomain(t, mode, diamond)
		a, _ := addr.Option1Address(0)
		d.Routers[0].ServeAnycast(a)
		d.Routers[3].ServeAnycast(a)
		eng.Run(0)
		got := d.Routers[1].AnycastMembers(a)
		if len(got) != 2 || got[0] != 0 || got[1] != 3 {
			t.Errorf("mode %d: members = %v", mode, got)
		}
	}
}

func TestAnycastWithdraw(t *testing.T) {
	d, eng := buildDomain(t, ModeExplicitList, diamond)
	a, _ := addr.Option1Address(0)
	d.Routers[1].ServeAnycast(a)
	d.Routers[2].ServeAnycast(a)
	eng.Run(0)
	d.Routers[1].WithdrawAnycast(a)
	eng.Run(0)
	member, _, _, ok := d.Routers[0].ResolveAnycast(a)
	if !ok || member != 2 {
		t.Errorf("after withdraw, member = %d ok %v", member, ok)
	}
	d.Routers[2].WithdrawAnycast(a)
	eng.Run(0)
	if _, _, _, ok := d.Routers[0].ResolveAnycast(a); ok {
		t.Error("empty group resolved")
	}
}

func TestLinkFailureReconverges(t *testing.T) {
	d, eng := buildDomain(t, ModeExplicitList, diamond)
	r0 := d.Routers[0]
	if r0.DistanceTo(3) != 2 {
		t.Fatal("precondition")
	}
	// Fail link 1–3 (both directions, as the endpoints notice).
	d.Routers[1].SetLinkCost(3, -1)
	d.Routers[3].SetLinkCost(1, -1)
	eng.Run(0)
	if got := r0.DistanceTo(3); got != 11 {
		t.Errorf("after failure, dist 0→3 = %d, want 11 (via 2)", got)
	}
	// Anycast re-redirects too.
	a, _ := addr.Option1Address(0)
	d.Routers[3].ServeAnycast(a)
	eng.Run(0)
	if _, dist, _, ok := r0.ResolveAnycast(a); !ok || dist != 11 {
		t.Errorf("anycast after failure: dist %d ok %v", dist, ok)
	}
	// Restore.
	d.Routers[1].SetLinkCost(3, 1)
	d.Routers[3].SetLinkCost(1, 1)
	eng.Run(0)
	if got := r0.DistanceTo(3); got != 2 {
		t.Errorf("after restore, dist = %d", got)
	}
}

func TestOneWayLinkIgnored(t *testing.T) {
	// Only router 0 claims adjacency to 1; the two-way check must reject it.
	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	fab.Connect(0, 1, 1)
	r0 := NewRouter(0, ModeExplicitList, fab, []Link{{To: 1, Cost: 1}})
	r1 := NewRouter(1, ModeExplicitList, fab, nil) // does not list 0
	r0.Start()
	r1.Start()
	eng.Run(0)
	if r0.DistanceTo(1) < graph.Inf {
		t.Error("one-way adjacency used for forwarding")
	}
}

func TestHighCostExceedsDomainDiameter(t *testing.T) {
	// Guard the constant: any realistic intra-domain path must be cheaper
	// than one virtual anycast link, or SPF could route through the
	// virtual node.
	const maxRouters, maxLinkCost = 1 << 10, 1 << 16
	if int64(maxRouters)*maxLinkCost >= HighCost {
		t.Error("HighCost too small")
	}
}

func TestSequenceNumberSupersedes(t *testing.T) {
	d, eng := buildDomain(t, ModeExplicitList, [][3]int64{{0, 1, 5}})
	d.Routers[0].SetLinkCost(1, 2)
	d.Routers[1].SetLinkCost(0, 2)
	eng.Run(0)
	if got := d.Routers[1].DistanceTo(0); got != 2 {
		t.Errorf("dist after update = %d, want 2", got)
	}
}

func BenchmarkFloodAndSPF(b *testing.B) {
	// 50-router ring with chords.
	adj := map[int][]Link{}
	addEdge := func(a, c int, w int64) {
		adj[a] = append(adj[a], Link{To: c, Cost: w})
		adj[c] = append(adj[c], Link{To: a, Cost: w})
	}
	const n = 50
	for i := 0; i < n; i++ {
		addEdge(i, (i+1)%n, 1)
		if i%5 == 0 {
			addEdge(i, (i+n/2)%n, 3)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := netsim.NewEngine()
		fab := netsim.NewFabric(eng)
		d := NewDomain(fab, ModeExplicitList, adj)
		d.Start()
		eng.Run(0)
		if d.Routers[0].DistanceTo(n/2) >= graph.Inf {
			b.Fatal("did not converge")
		}
	}
}
