package distvec

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/netsim"
)

func loop(id int) addr.V4 { return addr.V4FromOctets(10, 0, 0, byte(id+1)) }

// buildLine wires n routers in a line 0—1—…—n-1 with metric-1 links.
func buildLine(t *testing.T, n int) (*Domain, *netsim.Engine) {
	t.Helper()
	adj := map[int]map[int]int{}
	loops := map[int]addr.V4{}
	for i := 0; i < n; i++ {
		adj[i] = map[int]int{}
		loops[i] = loop(i)
	}
	for i := 0; i+1 < n; i++ {
		adj[i][i+1] = 1
		adj[i+1][i] = 1
	}
	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	d := NewDomain(fab, loops, adj)
	d.Start()
	eng.Run(0)
	return d, eng
}

func TestConvergenceOnLine(t *testing.T) {
	d, _ := buildLine(t, 5)
	r0 := d.Routers[0]
	for i := 0; i < 5; i++ {
		if got := r0.DistanceTo(loop(i)); got != i {
			t.Errorf("dist to router %d = %d, want %d", i, got, i)
		}
	}
	e, ok := r0.Lookup(loop(4))
	if !ok || e.NextHop != 1 {
		t.Errorf("route to 4 = %+v ok %v", e, ok)
	}
	// Self route.
	if e, ok := r0.Lookup(loop(0)); !ok || e.Metric != 0 || e.NextHop != 0 {
		t.Errorf("self route = %+v ok %v", e, ok)
	}
}

func TestAnycastClosestWins(t *testing.T) {
	d, eng := buildLine(t, 7)
	a, _ := addr.Option1Address(0)
	// Members at 1 and 5; router 0 must reach 1; router 4 must reach 5;
	// router 3 ties (dist 2 both ways) and either is acceptable — but the
	// metric must be 2.
	d.Routers[1].ServeAnycast(a)
	d.Routers[5].ServeAnycast(a)
	eng.Run(0)
	if got := d.Routers[0].DistanceTo(a); got != 1 {
		t.Errorf("router 0 anycast dist = %d, want 1", got)
	}
	if got := d.Routers[4].DistanceTo(a); got != 1 {
		t.Errorf("router 4 anycast dist = %d, want 1", got)
	}
	if got := d.Routers[3].DistanceTo(a); got != 2 {
		t.Errorf("router 3 anycast dist = %d, want 2", got)
	}
	// Members resolve to themselves.
	if e, _ := d.Routers[5].Lookup(a); e.Metric != 0 || e.NextHop != 5 {
		t.Errorf("member route = %+v", e)
	}
}

func TestAnycastSeamlessSpread(t *testing.T) {
	// The Figure-1 dynamic at IGP scale: as closer members appear, a
	// client's route moves without any client-side change.
	d, eng := buildLine(t, 6)
	a, _ := addr.Option1Address(1)
	d.Routers[5].ServeAnycast(a)
	eng.Run(0)
	if got := d.Routers[0].DistanceTo(a); got != 5 {
		t.Fatalf("stage 1 dist = %d", got)
	}
	d.Routers[3].ServeAnycast(a)
	eng.Run(0)
	if got := d.Routers[0].DistanceTo(a); got != 3 {
		t.Fatalf("stage 2 dist = %d", got)
	}
	d.Routers[1].ServeAnycast(a)
	eng.Run(0)
	if got := d.Routers[0].DistanceTo(a); got != 1 {
		t.Fatalf("stage 3 dist = %d", got)
	}
}

func TestWithdrawPropagates(t *testing.T) {
	d, eng := buildLine(t, 4)
	a, _ := addr.Option1Address(2)
	d.Routers[1].ServeAnycast(a)
	d.Routers[3].ServeAnycast(a)
	eng.Run(0)
	if got := d.Routers[0].DistanceTo(a); got != 1 {
		t.Fatalf("pre-withdraw dist = %d", got)
	}
	d.Routers[1].WithdrawAnycast(a)
	eng.Run(0)
	if got := d.Routers[0].DistanceTo(a); got != 3 {
		t.Errorf("post-withdraw dist = %d, want 3", got)
	}
	d.Routers[3].WithdrawAnycast(a)
	eng.Run(0)
	if _, ok := d.Routers[0].Lookup(a); ok {
		t.Error("fully withdrawn group still resolvable")
	}
}

func TestLinkFailurePoisonsRoutes(t *testing.T) {
	d, eng := buildLine(t, 4)
	if got := d.Routers[0].DistanceTo(loop(3)); got != 3 {
		t.Fatalf("precondition dist = %d", got)
	}
	// Cut 1–2; the line partitions into {0,1} and {2,3}.
	d.Routers[1].SetLinkDown(2)
	d.Routers[2].SetLinkDown(1)
	eng.Run(0)
	if _, ok := d.Routers[0].Lookup(loop(3)); ok {
		t.Error("route across cut still present")
	}
	if _, ok := d.Routers[0].Lookup(loop(1)); !ok {
		t.Error("route within partition lost")
	}
	// Heal; routes return.
	d.Routers[1].SetLinkUp(2, 1)
	d.Routers[2].SetLinkUp(1, 1)
	eng.Run(0)
	if got := d.Routers[0].DistanceTo(loop(3)); got != 3 {
		t.Errorf("post-heal dist = %d", got)
	}
}

func TestTriangleReconvergence(t *testing.T) {
	// Triangle 0–1–2–0: cutting 0–1 leaves the detour through 2.
	adj := map[int]map[int]int{
		0: {1: 1, 2: 1},
		1: {0: 1, 2: 1},
		2: {0: 1, 1: 1},
	}
	loops := map[int]addr.V4{0: loop(0), 1: loop(1), 2: loop(2)}
	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	d := NewDomain(fab, loops, adj)
	d.Start()
	eng.Run(0)
	if got := d.Routers[0].DistanceTo(loop(1)); got != 1 {
		t.Fatalf("precondition: %d", got)
	}
	fab.FailLink(0, 1)
	d.Routers[0].SetLinkDown(1)
	d.Routers[1].SetLinkDown(0)
	eng.Run(0)
	e, ok := d.Routers[0].Lookup(loop(1))
	if !ok || e.Metric != 2 || e.NextHop != 2 {
		t.Errorf("detour route = %+v ok %v", e, ok)
	}
}

func TestTableSize(t *testing.T) {
	d, eng := buildLine(t, 3)
	if got := d.Routers[0].TableSize(); got != 3 {
		t.Errorf("TableSize = %d, want 3 loopbacks", got)
	}
	a, _ := addr.Option1Address(3)
	d.Routers[2].ServeAnycast(a)
	eng.Run(0)
	if got := d.Routers[0].TableSize(); got != 4 {
		t.Errorf("TableSize with anycast = %d", got)
	}
}

func TestStaleMessageFromDownNeighborIgnored(t *testing.T) {
	d, eng := buildLine(t, 2)
	// Simulate: 0 drops its adjacency to 1, then a stale vector from 1
	// arrives; it must not resurrect routes.
	d.Routers[0].SetLinkDown(1)
	eng.Run(0)
	d.Routers[0].Receive(1, vector{routes: map[addr.V4]int{loop(1): 0}})
	if _, ok := d.Routers[0].Lookup(loop(1)); ok {
		t.Error("stale vector accepted from down neighbor")
	}
}

func TestMetricsRespectLinkWeights(t *testing.T) {
	// 0 —3— 1, 0 —1— 2 —1— 1: the two-hop path (metric 2) beats the
	// direct metric-3 link.
	adj := map[int]map[int]int{
		0: {1: 3, 2: 1},
		1: {0: 3, 2: 1},
		2: {0: 1, 1: 1},
	}
	loops := map[int]addr.V4{0: loop(0), 1: loop(1), 2: loop(2)}
	eng := netsim.NewEngine()
	fab := netsim.NewFabric(eng)
	d := NewDomain(fab, loops, adj)
	d.Start()
	eng.Run(0)
	e, ok := d.Routers[0].Lookup(loop(1))
	if !ok || e.Metric != 2 || e.NextHop != 2 {
		t.Errorf("weighted route = %+v ok %v", e, ok)
	}
}

func BenchmarkConvergence(b *testing.B) {
	// The line must stay within RIP's 15-hop metric horizon.
	const n = 14
	adj := map[int]map[int]int{}
	loops := map[int]addr.V4{}
	for i := 0; i < n; i++ {
		adj[i] = map[int]int{}
		loops[i] = loop(i)
	}
	for i := 0; i+1 < n; i++ {
		adj[i][i+1] = 1
		adj[i+1][i] = 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := netsim.NewEngine()
		fab := netsim.NewFabric(eng)
		d := NewDomain(fab, loops, adj)
		d.Start()
		eng.Run(0)
		if d.Routers[0].DistanceTo(loop(n-1)) != n-1 {
			b.Fatal("did not converge")
		}
	}
}
