package distvec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/graph"
	"github.com/evolvable-net/evolve/internal/netsim"
)

// randomConnected builds matching protocol adjacency and oracle graphs.
// Metrics stay small so paths never hit Infinity on these sizes.
func randomConnected(seed int64, n int) (map[int]map[int]int, map[int]addr.V4, *graph.Graph) {
	rng := rand.New(rand.NewSource(seed))
	adj := map[int]map[int]int{}
	loops := map[int]addr.V4{}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		adj[i] = map[int]int{}
		loops[i] = addr.V4FromOctets(10, 0, byte(i>>8), byte(i))
	}
	addEdge := func(a, b, w int) {
		adj[a][b] = w
		adj[b][a] = w
		g.AddBiEdge(a, b, int64(w))
	}
	for i := 0; i+1 < n; i++ {
		addEdge(i, i+1, 1+rng.Intn(3))
	}
	for i := 0; i < n; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b && adj[a][b] == 0 {
			addEdge(a, b, 1+rng.Intn(3))
		}
	}
	return adj, loops, g
}

// TestProtocolMatchesBellmanFordOracle: the converged distance-vector
// tables equal the oracle's shortest-path distances for every router
// pair.
func TestProtocolMatchesBellmanFordOracle(t *testing.T) {
	f := func(seed int64) bool {
		const n = 8
		adj, loops, g := randomConnected(seed, n)
		eng := netsim.NewEngine()
		fab := netsim.NewFabric(eng)
		dom := NewDomain(fab, loops, adj)
		dom.Start()
		eng.Run(0)
		for src := 0; src < n; src++ {
			dist := g.BellmanFord(src)
			for dst := 0; dst < n; dst++ {
				want := int(dist[dst])
				if dist[dst] >= graph.Inf {
					want = Infinity
				}
				if got := dom.Routers[src].DistanceTo(loops[dst]); got != want {
					t.Logf("seed %d: %d→%d protocol %d oracle %d", seed, src, dst, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestAnycastIsArgminOracle: for random member sets, the anycast metric at
// every router equals min over members of the oracle's distance.
func TestAnycastIsArgminOracle(t *testing.T) {
	f := func(seed int64) bool {
		const n = 8
		adj, loops, g := randomConnected(seed, n)
		eng := netsim.NewEngine()
		fab := netsim.NewFabric(eng)
		dom := NewDomain(fab, loops, adj)
		dom.Start()
		eng.Run(0)
		a, err := addr.Option1Address(1)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0xacab))
		var members []int
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				members = append(members, i)
				dom.Routers[i].ServeAnycast(a)
			}
		}
		eng.Run(0)
		for src := 0; src < n; src++ {
			got := dom.Routers[src].DistanceTo(a)
			if len(members) == 0 {
				if got != Infinity {
					return false
				}
				continue
			}
			dist := g.BellmanFord(src)
			best := int64(graph.Inf)
			for _, m := range members {
				if dist[m] < best {
					best = dist[m]
				}
			}
			if int64(got) != best {
				t.Logf("seed %d: router %d anycast %d oracle %d", seed, src, got, best)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestNextHopsFormShortestRoutes: following NextHop pointers from any
// router reaches the destination in exactly the advertised metric — no
// inconsistent forwarding state after convergence.
func TestNextHopsFormShortestRoutes(t *testing.T) {
	f := func(seed int64) bool {
		const n = 8
		adj, loops, _ := randomConnected(seed, n)
		eng := netsim.NewEngine()
		fab := netsim.NewFabric(eng)
		dom := NewDomain(fab, loops, adj)
		dom.Start()
		eng.Run(0)
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				e, ok := dom.Routers[src].Lookup(loops[dst])
				if !ok {
					return false // connected graph: everything reachable
				}
				// Walk the chain of next hops (bounded by hop count, not
				// metric sum — paths of n routers have at most n−1 hops).
				cur, walked := src, 0
				for hops := 0; cur != dst && hops < n; hops++ {
					step, ok := dom.Routers[cur].Lookup(loops[dst])
					if !ok {
						return false
					}
					walked += adj[cur][step.NextHop]
					cur = step.NextHop
				}
				if cur != dst || walked != e.Metric {
					t.Logf("seed %d: %d→%d walked %d metric %d", seed, src, dst, walked, e.Metric)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
