// Package distvec implements a RIP-like intra-domain distance-vector
// protocol with the paper's §3.2 anycast extension: an IPvN router simply
// advertises a distance of zero to its anycast address, and standard
// distance-vector processing ensures every router discovers the next hop
// to its *closest* IPvN router.
//
// As the paper notes, under distance-vector an IPvN router cannot easily
// identify the other members of the group — only its distance to the
// nearest one — so unlike package linkstate this package deliberately
// offers no member-discovery API. vN-Bone construction over such domains
// must bootstrap through the anycast address itself (§3.3.1 footnote).
package distvec

import (
	"sort"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/netsim"
)

// Infinity is the RIP unreachable metric.
const Infinity = 16

// Entry is one routing-table row.
type Entry struct {
	Metric  int
	NextHop int
}

// vector is the update message exchanged between neighbours.
type vector struct {
	routes map[addr.V4]int
}

// request asks a neighbour for its full vector (RIP request message). It
// is sent when a route is poisoned so that previously non-best alternates
// held by unchanged neighbours are re-learned.
type request struct{}

// Router is one distance-vector speaker.
type Router struct {
	id       int
	loopback addr.V4
	fabric   *netsim.Fabric
	// neighbors maps neighbour id → link metric (RIP canonically uses 1).
	neighbors map[int]int
	table     map[addr.V4]Entry
	anycast   map[addr.V4]bool

	// pending coalesces triggered updates scheduled but not yet sent;
	// pendingReq likewise for requests.
	pending    bool
	pendingReq bool
}

// NewRouter creates a router; neighbors maps neighbour id → hop metric.
func NewRouter(id int, loopback addr.V4, fabric *netsim.Fabric, neighbors map[int]int) *Router {
	r := &Router{
		id:        id,
		loopback:  loopback,
		fabric:    fabric,
		neighbors: map[int]int{},
		table:     map[addr.V4]Entry{},
		anycast:   map[addr.V4]bool{},
	}
	for n, m := range neighbors {
		if m <= 0 {
			m = 1
		}
		r.neighbors[n] = m
	}
	fabric.Attach(id, r)
	return r
}

// ID returns the router identifier.
func (r *Router) ID() int { return r.id }

// Loopback returns the router's own address.
func (r *Router) Loopback() addr.V4 { return r.loopback }

// Start installs the router's own routes and sends the first update.
func (r *Router) Start() {
	r.table[r.loopback] = Entry{Metric: 0, NextHop: r.id}
	for a := range r.anycast {
		r.table[a] = Entry{Metric: 0, NextHop: r.id}
	}
	r.scheduleUpdate()
}

// ServeAnycast advertises distance 0 to the anycast address a — the
// paper's entire distance-vector anycast extension.
func (r *Router) ServeAnycast(a addr.V4) {
	r.anycast[a] = true
	r.table[a] = Entry{Metric: 0, NextHop: r.id}
	r.scheduleUpdate()
}

// WithdrawAnycast stops serving a. The local route is poisoned so the
// withdrawal propagates.
func (r *Router) WithdrawAnycast(a addr.V4) {
	if !r.anycast[a] {
		return
	}
	delete(r.anycast, a)
	r.table[a] = Entry{Metric: Infinity, NextHop: r.id}
	r.scheduleUpdate()
}

// SetLinkDown fails the adjacency to neighbor: routes through it are
// poisoned and the change propagates.
func (r *Router) SetLinkDown(neighbor int) {
	delete(r.neighbors, neighbor)
	changed := false
	for dest, e := range r.table {
		if e.NextHop == neighbor && e.Metric < Infinity {
			r.table[dest] = Entry{Metric: Infinity, NextHop: neighbor}
			changed = true
		}
	}
	if changed {
		r.scheduleUpdate()
		r.scheduleRequest()
	}
}

// SetLinkUp (re)creates the adjacency to neighbor with the given metric.
func (r *Router) SetLinkUp(neighbor, metric int) {
	if metric <= 0 {
		metric = 1
	}
	r.neighbors[neighbor] = metric
	r.scheduleUpdate()
	r.scheduleRequest()
}

// Lookup returns the table entry for dest.
func (r *Router) Lookup(dest addr.V4) (Entry, bool) {
	e, ok := r.table[dest]
	if !ok || e.Metric >= Infinity {
		return Entry{}, false
	}
	return e, true
}

// DistanceTo returns the metric to dest, or Infinity.
func (r *Router) DistanceTo(dest addr.V4) int {
	if e, ok := r.Lookup(dest); ok {
		return e.Metric
	}
	return Infinity
}

// TableSize returns the number of reachable destinations (for the
// routing-state experiments).
func (r *Router) TableSize() int {
	n := 0
	for _, e := range r.table {
		if e.Metric < Infinity {
			n++
		}
	}
	return n
}

// scheduleUpdate coalesces triggered updates within the current event
// round: the update fires after a tiny delay so a burst of table changes
// produces one message per neighbour.
func (r *Router) scheduleUpdate() {
	if r.pending {
		return
	}
	r.pending = true
	r.fabric.Engine().After(1, func() {
		r.pending = false
		r.sendUpdates()
	})
}

// scheduleRequest coalesces a round of RIP requests to all neighbours.
func (r *Router) scheduleRequest() {
	if r.pendingReq {
		return
	}
	r.pendingReq = true
	r.fabric.Engine().After(1, func() {
		r.pendingReq = false
		nbrs := make([]int, 0, len(r.neighbors))
		for n := range r.neighbors {
			nbrs = append(nbrs, n)
		}
		sort.Ints(nbrs)
		for _, n := range nbrs {
			r.fabric.Send(r.id, n, request{})
		}
	})
}

// sendUpdates sends the full vector to each neighbour, applying split
// horizon with poisoned reverse: routes learned through a neighbour are
// advertised back to it with metric Infinity.
func (r *Router) sendUpdates() {
	nbrs := make([]int, 0, len(r.neighbors))
	for n := range r.neighbors {
		nbrs = append(nbrs, n)
	}
	sort.Ints(nbrs)
	for _, n := range nbrs {
		v := vector{routes: make(map[addr.V4]int, len(r.table))}
		for dest, e := range r.table {
			m := e.Metric
			if e.NextHop == n && e.NextHop != r.id {
				m = Infinity // poisoned reverse
			}
			v.routes[dest] = m
		}
		r.fabric.Send(r.id, n, v)
	}
}

// Receive implements netsim.Handler: standard Bellman-Ford relaxation for
// vectors, full-table response for requests.
func (r *Router) Receive(from int, msg any) {
	if _, up := r.neighbors[from]; !up {
		return // stale message from a failed adjacency
	}
	switch v := msg.(type) {
	case request:
		r.scheduleUpdate()
	case vector:
		linkMetric := r.neighbors[from]
		changed, worsened := false, false
		for dest, m := range v.routes {
			cand := m + linkMetric
			if cand > Infinity {
				cand = Infinity
			}
			cur, have := r.table[dest]
			switch {
			case r.anycast[dest] || dest == r.loopback:
				// Locally served destinations stay at metric 0.
				continue
			case !have || cand < cur.Metric:
				r.table[dest] = Entry{Metric: cand, NextHop: from}
				changed = true
			case cur.NextHop == from && cand != cur.Metric:
				// Metric change from our current next hop must be adopted
				// even when worse (this is what makes poisoning work).
				r.table[dest] = Entry{Metric: cand, NextHop: from}
				changed = true
				worsened = true
			}
		}
		if changed {
			r.scheduleUpdate()
		}
		if worsened {
			// Ask other neighbours whether they still hold an alternate.
			r.scheduleRequest()
		}
	}
}

// Domain wires up and runs all routers of one domain, analogous to
// linkstate.Domain.
type Domain struct {
	Routers map[int]*Router
}

// NewDomain creates one Router per entry of adjacency (router id →
// neighbour id → metric) with the given loopback addresses.
func NewDomain(fabric *netsim.Fabric, loopbacks map[int]addr.V4, adjacency map[int]map[int]int) *Domain {
	d := &Domain{Routers: map[int]*Router{}}
	ids := make([]int, 0, len(adjacency))
	for id := range adjacency {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		d.Routers[id] = NewRouter(id, loopbacks[id], fabric, adjacency[id])
		for n, m := range adjacency[id] {
			fabric.Connect(id, n, netsim.Time(m))
		}
	}
	return d
}

// Start boots every router.
func (d *Domain) Start() {
	ids := make([]int, 0, len(d.Routers))
	for id := range d.Routers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		d.Routers[id].Start()
	}
}
