package livebridge

import (
	"bytes"
	"testing"
	"time"

	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/overlaynet"
	"github.com/evolvable-net/evolve/internal/routing/bgpvn"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/vncast"
)

const timeout = 3 * time.Second

func buildEvo(t *testing.T, egress bgpvn.EgressPolicy) (*topology.Network, *core.Evolution) {
	t.Helper()
	net, err := topology.TransitStub(2, 2, 0.3, topology.GenConfig{
		Seed: 5, RoutersPerDomain: 2, HostsPerDomain: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	evo, err := core.New(net, core.Config{
		Option:    anycast.Option2,
		DefaultAS: net.DomainByName("T0").ASN,
		Egress:    egress,
	})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployDomain(net.DomainByName("T0").ASN, 0)
	evo.DeployDomain(net.DomainByName("S1.0").ASN, 0)
	return net, evo
}

func TestProvisionedOverlayDeliversEverywhere(t *testing.T) {
	net, evo := buildEvo(t, bgpvn.PathInformed)
	o, err := Provision(evo)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	if len(o.Members) != len(evo.Dep.Members()) {
		t.Errorf("members provisioned %d, want %d", len(o.Members), len(evo.Dep.Members()))
	}
	if len(o.Hosts) != len(net.Hosts) {
		t.Errorf("hosts provisioned %d, want %d", len(o.Hosts), len(net.Hosts))
	}

	payload := []byte("bridged")
	for _, src := range net.Hosts {
		for _, dst := range net.Hosts {
			if src.ID == dst.ID {
				continue
			}
			got, err := o.Send(src, dst, payload, timeout)
			if err != nil {
				t.Fatalf("%s → %s: %v", src.Name, dst.Name, err)
			}
			if !bytes.Equal(got.Payload, payload) {
				t.Fatalf("%s → %s payload %q", src.Name, dst.Name, got.Payload)
			}
		}
	}
}

func TestLiveTrajectoryMatchesSimulation(t *testing.T) {
	net, evo := buildEvo(t, bgpvn.PathInformed)
	o, err := Provision(evo)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	src := net.HostsIn(net.DomainByName("S0.0").ASN)[0]
	dst := net.HostsIn(net.DomainByName("S0.1").ASN)[0]
	// The simulator's prediction of the last vN hop.
	sim, err := evo.Send(src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantLastHop := net.Router(sim.Egress.Member).Loopback

	got, err := o.Send(src, dst, []byte("check"), timeout)
	if err != nil {
		t.Fatal(err)
	}
	if got.OuterSrc != wantLastHop {
		t.Errorf("live last hop %s, simulated egress %s", got.OuterSrc, wantLastHop)
	}
	// Live ingress counter: the simulated ingress member must have
	// touched the packet.
	ingNode := o.Members[sim.Ingress.Member]
	s := ingNode.Stats()
	if s.Forwarded+s.Exited == 0 {
		t.Errorf("simulated ingress node never forwarded: %+v", s)
	}
}

func TestNativeDeliveryOverBridge(t *testing.T) {
	net, evo := buildEvo(t, bgpvn.PathInformed)
	o, err := Provision(evo)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	// Both endpoints in participant domains: native IPvN addresses.
	src := net.HostsIn(net.DomainByName("T0").ASN)[0]
	dst := net.HostsIn(net.DomainByName("S1.0").ASN)[0]
	vs, _ := evo.HostVNAddr(src)
	vd, _ := evo.HostVNAddr(dst)
	if vs.IsSelf() || vd.IsSelf() {
		t.Fatal("expected native addresses")
	}
	got, err := o.Send(src, dst, []byte("native live"), timeout)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "native live" {
		t.Errorf("payload = %q", got.Payload)
	}
	if got.From != vs || got.To != vd {
		t.Errorf("addresses: %s → %s", got.From, got.To)
	}
}

func TestSendUnknownHost(t *testing.T) {
	net, evo := buildEvo(t, bgpvn.ExitEarly)
	o, err := Provision(evo)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	ghost := &topology.Host{ID: 9999, Name: "ghost"}
	if _, err := o.Send(ghost, net.Hosts[0], nil, timeout); err == nil {
		t.Error("unknown src accepted")
	}
	if _, err := o.Send(net.Hosts[0], ghost, nil, timeout); err == nil {
		t.Error("unknown dst accepted")
	}
}

func TestReprovisionAfterFailureChangesTrajectory(t *testing.T) {
	// Simulated failure → reconverged control plane → fresh data plane:
	// the live trajectory follows the new prediction.
	b := topology.NewBuilder()
	dP1 := b.AddDomain("P1")
	dP2 := b.AddDomain("P2")
	dT := b.AddDomain("T")
	dC := b.AddDomain("C")
	rP1 := b.AddRouter(dP1, "")
	rP2 := b.AddRouter(dP2, "")
	rT := b.AddRouter(dT, "")
	rC := b.AddRouter(dC, "")
	b.Provide(rT, rP1, 10)
	b.Provide(rT, rP2, 10)
	b.Provide(rP1, rC, 5)  // cheap uplink via P1
	b.Provide(rP2, rC, 30) // backup via P2
	src := b.AddHost(dC, rC, "src", 1)
	dst := b.AddHost(dT, rT, "dst", 1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	evo, err := core.New(net, core.Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployRouter(rP1)
	evo.DeployRouter(rP2)

	o1, err := Provision(evo)
	if err != nil {
		t.Fatal(err)
	}
	got, err := o1.Send(src, dst, []byte("pre"), timeout)
	if err != nil {
		t.Fatal(err)
	}
	o1.Close()
	_ = got

	sim1, err := evo.Send(src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.DomainOf(sim1.Ingress.Member) != dP1.ASN {
		t.Fatalf("precondition: ingress in AS%d", net.DomainOf(sim1.Ingress.Member))
	}

	// The cheap uplink dies; re-provision against the reconverged state.
	if _, ok := evo.FailInterLink(rP1, rC); !ok {
		t.Fatal("link not found")
	}
	o2, err := Provision(evo)
	if err != nil {
		t.Fatal(err)
	}
	defer o2.Close()
	sim2, err := evo.Send(src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.DomainOf(sim2.Ingress.Member) != dP2.ASN {
		t.Fatalf("post-failure ingress in AS%d, want P2", net.DomainOf(sim2.Ingress.Member))
	}
	got, err = o2.Send(src, dst, []byte("post"), timeout)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "post" {
		t.Errorf("payload = %q", got.Payload)
	}
	// The live ingress node that touched the packet is P2's member now.
	if s := o2.Members[sim2.Ingress.Member].Stats(); s.Forwarded+s.Exited == 0 {
		t.Error("new ingress node idle — live path did not follow the control plane")
	}
}

func TestLiveMulticastEndToEnd(t *testing.T) {
	// The full payoff, live: simulate, build the tree, provision, send
	// one UDP packet, and every subscriber node receives a copy.
	net, evo := buildEvo(t, bgpvn.PathInformed)
	o, err := Provision(evo)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	svc := vncast.New(evo)
	grp := svc.CreateGroup(1)
	src := net.HostsIn(net.DomainByName("T0").ASN)[0]
	var subs []*topology.Host
	for _, h := range net.Hosts {
		if h.ID == src.ID {
			continue
		}
		if err := svc.Subscribe(grp, h); err != nil {
			t.Fatal(err)
		}
		subs = append(subs, h)
	}
	group, err := o.ProvisionMulticast(svc, grp, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SendMulticast(src, group, []byte("one packet, many homes")); err != nil {
		t.Fatal(err)
	}
	for _, h := range subs {
		got, err := o.Hosts[h.ID].WaitInbox(timeout)
		if err != nil {
			t.Fatalf("subscriber %s: %v", h.Name, err)
		}
		if string(got.Payload) != "one packet, many homes" {
			t.Errorf("subscriber %s payload = %q", h.Name, got.Payload)
		}
		if got.To != group {
			t.Errorf("subscriber %s dst = %s", h.Name, got.To)
		}
	}
	// Replication economy: the source sent exactly once; total live
	// forwards+exits across members must be well under one-per-subscriber
	// on the shared segments (exits equal subscriber count, forwards are
	// the shared tree's internal copies).
	var forwards, exits uint64
	for _, m := range o.Members {
		s := m.Stats()
		forwards += s.Forwarded
		exits += s.Exited
	}
	if exits != uint64(len(subs)) {
		t.Errorf("exits = %d, want one per subscriber (%d)", exits, len(subs))
	}
	if forwards >= uint64(len(subs)) {
		t.Errorf("tree forwards (%d) not amortized vs %d subscribers", forwards, len(subs))
	}
}

func TestProvisionRequiresDeployment(t *testing.T) {
	net, err := topology.TransitStub(2, 2, 0, topology.GenConfig{Seed: 6, HostsPerDomain: 1})
	if err != nil {
		t.Fatal(err)
	}
	evo, err := core.New(net, core.Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Provision(evo); err == nil {
		t.Error("provisioning an undeployed evolution succeeded")
	}
}

func TestReconcileAppliesUndeployInPlace(t *testing.T) {
	net, evo := buildEvo(t, bgpvn.PathInformed)
	o, err := Provision(evo)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	// Warm the data plane so surviving nodes have counter history.
	src := net.HostsIn(net.DomainByName("S0.0").ASN)[0]
	dst := net.HostsIn(net.DomainByName("S1.0").ASN)[0]
	if _, err := o.Send(src, dst, []byte("warm"), timeout); err != nil {
		t.Fatal(err)
	}

	members := evo.Dep.Members()
	if len(members) < 2 {
		t.Fatalf("need >= 2 members, have %d", len(members))
	}
	victim := members[0]
	survivors := map[topology.RouterID]*overlaynet.Node{}
	preStats := map[topology.RouterID]overlaynet.Stats{}
	for id, n := range o.Members {
		if id != victim {
			survivors[id] = n
			preStats[id] = n.Stats()
		}
	}
	preHosts := map[topology.HostID]*overlaynet.Node{}
	for id, n := range o.Hosts {
		preHosts[id] = n
	}

	evo.UndeployRouter(victim)
	if err := o.Reconcile(); err != nil {
		t.Fatalf("reconcile: %v", err)
	}

	if _, still := o.Members[victim]; still {
		t.Error("undeployed member still provisioned")
	}
	// Unaffected nodes survive by identity — same *Node, counters intact.
	for id, n := range survivors {
		now, ok := o.Members[id]
		if !ok {
			t.Errorf("member %d vanished on reconcile", id)
			continue
		}
		if now != n {
			t.Errorf("member %d was restarted (new node identity)", id)
		}
		s := now.Stats()
		was := preStats[id]
		if s.Forwarded < was.Forwarded || s.Exited < was.Exited || s.Delivered < was.Delivered {
			t.Errorf("member %d counters went backwards: %+v -> %+v", id, was, s)
		}
	}
	for id, n := range preHosts {
		if now, ok := o.Hosts[id]; !ok || now != n {
			t.Errorf("host %d was restarted by an unrelated undeploy", id)
		}
	}
	if snap := o.Reg.Counters().Snapshot(); snap.ReconcileDeltas == 0 {
		t.Error("reconcile deltas not counted")
	}

	// Delivery still works on the reconciled overlay.
	if got, err := o.Send(src, dst, []byte("post"), timeout); err != nil || string(got.Payload) != "post" {
		t.Errorf("post-reconcile send: %q %v", got.Payload, err)
	}
}

func TestReconcileFallsBackOnErrorEpoch(t *testing.T) {
	net, evo := buildEvo(t, bgpvn.PathInformed)
	o, err := Provision(evo)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	preMembers := len(o.Members)

	// Undeploying everything publishes an ErrNotDeployed epoch; the
	// provisioned overlay must keep its last-good configuration.
	for _, m := range evo.Dep.Members() {
		evo.UndeployRouter(m)
	}
	if err := o.Reconcile(); err == nil {
		t.Fatal("reconcile against an error epoch reported success")
	}
	if len(o.Members) != preMembers {
		t.Errorf("members after fallback = %d, want last-good %d", len(o.Members), preMembers)
	}
	if snap := o.Reg.Counters().Snapshot(); snap.ReconcileFallbacks == 0 {
		t.Error("reconcile fallback not counted")
	}

	// Last-good delivery still works: the simulator's resolver fails (no
	// members), so resolution rides the Registry's static member list.
	src := net.HostsIn(net.DomainByName("S0.0").ASN)[0]
	dst := net.HostsIn(net.DomainByName("S1.0").ASN)[0]
	if got, err := o.Send(src, dst, []byte("degraded"), timeout); err != nil || string(got.Payload) != "degraded" {
		t.Errorf("last-good send: %q %v", got.Payload, err)
	}
}

func TestWatchReconcilesOnEpochPublication(t *testing.T) {
	_, evo := buildEvo(t, bgpvn.PathInformed)
	o, err := Provision(evo)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	stop := o.Watch()
	defer stop()

	members := evo.Dep.Members()
	victim := members[len(members)-1]
	victimLoopback := evo.Net.Router(victim).Loopback
	evo.UndeployRouter(victim)

	// The watcher hears the epoch publication and reconciles; observe via
	// the Registry (its own lock) rather than the Members map.
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		present := false
		for _, m := range o.Reg.AnycastMembers(evo.AnycastAddr()) {
			if m == victimLoopback {
				present = true
			}
		}
		if !present {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("watcher never reconciled the undeploy")
}

func TestUnackedFlowEntersFallback(t *testing.T) {
	// The live plane's delivery failures must drive the simulator's
	// per-flow health: when reliable sends toward a destination repeatedly
	// exhaust their retransmission budget, the observer wiring reports
	// each ErrNotAcked into Evolution.ReportUnackedVN and the flow ends up
	// in the fallback state.
	net, err := topology.TransitStub(2, 2, 0.3, topology.GenConfig{
		Seed: 5, RoutersPerDomain: 2, HostsPerDomain: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	evo, err := core.New(net, core.Config{
		Option:    anycast.Option2,
		DefaultAS: net.DomainByName("T0").ASN,
		Egress:    bgpvn.PathInformed,
		Fallback:  core.FallbackConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployDomain(net.DomainByName("T0").ASN, 0)
	evo.DeployDomain(net.DomainByName("S1.0").ASN, 0)

	o, err := Provision(evo)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	o.EnableReliable(overlaynet.ReliableConfig{
		JitterSeed:     1,
		MaxAttempts:    1,
		RetransmitBase: time.Millisecond,
		RetransmitMax:  time.Millisecond,
	})

	src := net.HostsIn(net.DomainByName("S0.0").ASN)[0]
	dst := net.HostsIn(net.DomainByName("S1.0").ASN)[0]

	// Prime the flow-health record through the simulator's send path (the
	// live observer's reports match on the flow's recorded IPvN
	// destination).
	if _, err := evo.Send(src, dst, []byte("prime")); err != nil {
		t.Fatal(err)
	}
	if info, ok := evo.FlowHealth(src, dst); !ok || info.State != core.HealthHealthy {
		t.Fatalf("primed flow health = %+v (ok=%v), want healthy", info, ok)
	}

	// Black-hole the wire: every reliable send now exhausts its budget.
	o.Reg.SetFaultTransport(overlaynet.NewFaultTransport(overlaynet.FaultConfig{
		Seed: 7, DropRate: 1,
	}))

	deadline := time.Now().Add(timeout)
	for {
		if _, err := o.SendReliable(src, dst, []byte("lost"), 10*time.Millisecond); err == nil {
			t.Fatal("send over a fully dropped wire succeeded")
		}
		info, ok := evo.FlowHealth(src, dst)
		if ok && info.State == core.HealthFallback {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flow never entered fallback: %+v (ok=%v)", info, ok)
		}
	}

	// Degraded but not dark: the simulator's send path now rides the
	// IPv(N-1) baseline for this flow.
	d, err := evo.Send(src, dst, []byte("degraded"))
	if err != nil {
		t.Fatalf("fallback send: %v", err)
	}
	if !d.Fallback {
		t.Errorf("delivery in fallback state not marked Fallback: %+v", d)
	}
}

func TestFeedPeerHealthSignalsSuspectedRouters(t *testing.T) {
	// Suspicion raised by the live plane's keepalive probing must reach
	// the simulator's flow-health layer: after a member node dies and its
	// peers' probes go unanswered, FeedPeerHealth maps the suspected
	// loopback back to its bone router and signals every flow riding
	// through it.
	net, err := topology.TransitStub(2, 2, 0.3, topology.GenConfig{
		Seed: 5, RoutersPerDomain: 2, HostsPerDomain: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	evo, err := core.New(net, core.Config{
		Option:    anycast.Option2,
		DefaultAS: net.DomainByName("T0").ASN,
		Egress:    bgpvn.PathInformed,
		Fallback:  core.FallbackConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	evo.DeployDomain(net.DomainByName("T0").ASN, 0)
	evo.DeployDomain(net.DomainByName("S1.0").ASN, 0)
	o, err := Provision(evo)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	src := net.HostsIn(net.DomainByName("S0.0").ASN)[0]
	dst := net.HostsIn(net.DomainByName("S1.0").ASN)[0]
	if _, err := evo.Send(src, dst, []byte("prime")); err != nil {
		t.Fatal(err)
	}

	// No suspicion: feeding is a no-op.
	if n := o.FeedPeerHealth(); n != 0 {
		t.Fatalf("FeedPeerHealth with a healthy overlay signalled %d flows", n)
	}

	o.EnableLiveness(overlaynet.LivenessConfig{
		Interval:     5 * time.Millisecond,
		SuspectAfter: 2,
	})

	// Kill the flow's simulated ingress member; its probing peers will
	// suspect it.
	sim, err := evo.Send(src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := sim.Ingress.Member
	victimLoopback := net.Router(victim).Loopback
	o.Members[victim].Close()
	// Make sure at least one survivor probes the dead member (route
	// tables need not reference every peer in a small topology).
	for id, n := range o.Members {
		if id != victim {
			n.AddPeer(victimLoopback)
		}
	}

	deadline := time.Now().Add(timeout)
	for {
		if o.Reg.Suspected(victimLoopback) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never suspected by live probing")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if n := o.FeedPeerHealth(); n == 0 {
		t.Fatal("FeedPeerHealth signalled no flows despite a suspected ingress")
	}
	info, ok := evo.FlowHealth(src, dst)
	if !ok || info.State == core.HealthHealthy {
		t.Fatalf("flow health after suspicion feed = %+v (ok=%v), want degraded", info, ok)
	}
}

func TestReliableSendOverBridge(t *testing.T) {
	net, evo := buildEvo(t, bgpvn.PathInformed)
	o, err := Provision(evo)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	o.EnableReliable(overlaynet.ReliableConfig{JitterSeed: 1})

	src := net.HostsIn(net.DomainByName("S0.0").ASN)[0]
	dst := net.HostsIn(net.DomainByName("S1.0").ASN)[0]
	got, err := o.SendReliable(src, dst, []byte("acked"), timeout)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "acked" {
		t.Errorf("payload = %q", got.Payload)
	}
}
