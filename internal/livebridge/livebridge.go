// Package livebridge turns a simulated Evolution into a running overlay:
// one live UDP node per vN-Bone member and per endhost, with bone routes
// derived from the simulator's BGPvN decisions and anycast resolution
// delegated to the simulator's routing. The simulator is the control
// plane; the overlay is the data plane. Every packet a bridged Send
// delivers has crossed real sockets through the exact trajectory the
// simulation predicts.
package livebridge

import (
	"fmt"
	"time"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/overlaynet"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/vncast"
)

// Overlay is a provisioned live overlay.
type Overlay struct {
	Reg     *overlaynet.Registry
	Members map[topology.RouterID]*overlaynet.Node
	Hosts   map[topology.HostID]*overlaynet.Node

	evo *core.Evolution
}

// Provision builds the live overlay for the Evolution's current
// deployment state. Close the returned overlay when done. Deployment
// changes after provisioning are not tracked; re-provision instead.
func Provision(evo *core.Evolution) (*Overlay, error) {
	bone, err := evo.Bone()
	if err != nil {
		return nil, err
	}
	vn, err := evo.VN()
	if err != nil {
		return nil, err
	}
	o := &Overlay{
		Reg:     overlaynet.NewRegistry(),
		Members: map[topology.RouterID]*overlaynet.Node{},
		Hosts:   map[topology.HostID]*overlaynet.Node{},
		evo:     evo,
	}
	fail := func(err error) (*Overlay, error) {
		o.Close()
		return nil, err
	}

	// One live node per bone member, accepting the deployment's anycast
	// address.
	for _, m := range bone.Members() {
		n, err := overlaynet.NewNode(o.Reg, evo.Net.Router(m).Loopback)
		if err != nil {
			return fail(err)
		}
		n.ServeAnycast(evo.AnycastAddr())
		o.Members[m] = n
	}
	// One live node per endhost.
	for _, h := range evo.Net.Hosts {
		n, err := overlaynet.NewNode(o.Reg, h.Addr)
		if err != nil {
			return fail(err)
		}
		v, err := evo.HostVNAddr(h)
		if err != nil {
			return fail(err)
		}
		n.SetVNAddr(v)
		o.Hosts[h.ID] = n
	}

	// Anycast resolution delegates to the simulator's routing: the
	// ingress for a packet from src is whatever the simulated anycast
	// trajectory says.
	o.Reg.SetResolver(func(src, anycastAddr addr.V4) (addr.V4, bool) {
		var res topology.RouterID = -1
		if h := evo.Net.FindHost(src); h != nil {
			if r, err := evo.Anycast.ResolveFromHost(h, anycastAddr); err == nil {
				res = r.Member
			}
		} else if r := evo.Net.RouterByLoopback(src); r != nil {
			if rr, err := evo.Anycast.ResolveFromRouter(r.ID, anycastAddr); err == nil {
				res = rr.Member
			}
		}
		if res < 0 {
			return 0, false
		}
		return evo.Net.Router(res).Loopback, true
	})

	// Per-host /128 routes at every member, following the simulator's
	// egress decisions hop by hop.
	for _, m := range bone.Members() {
		node := o.Members[m]
		for _, h := range evo.Net.Hosts {
			v, err := evo.HostVNAddr(h)
			if err != nil {
				return fail(err)
			}
			var bonePath []topology.RouterID
			var egress topology.RouterID
			if v.IsSelf() {
				d, err := vn.SelectEgress(m, h.Addr, evo.Config().Egress)
				if err != nil {
					return fail(fmt.Errorf("livebridge: egress for %s from %d: %w", h.Name, m, err))
				}
				bonePath, egress = d.BonePath, d.Member
			} else {
				d, err := vn.RouteNative(m, v)
				if err != nil {
					return fail(fmt.Errorf("livebridge: native route for %s from %d: %w", h.Name, m, err))
				}
				bonePath, egress = d.BonePath, d.Member
			}
			var next addr.V4
			if egress == m || len(bonePath) < 2 {
				// This member is the egress: exit straight to the host.
				next = h.Addr
			} else {
				next = evo.Net.Router(bonePath[1]).Loopback
			}
			node.AddVNRoute(addr.HostVNPrefix(v), next)
		}
	}
	return o, nil
}

// Send delivers a payload from src to dst over the live overlay (host
// encapsulates toward the anycast address; relays and exits follow the
// provisioned routes) and waits for the destination's inbox.
func (o *Overlay) Send(src, dst *topology.Host, payload []byte, timeout time.Duration) (overlaynet.Received, error) {
	srcNode, ok := o.Hosts[src.ID]
	if !ok {
		return overlaynet.Received{}, fmt.Errorf("livebridge: unknown src host %s", src.Name)
	}
	dstNode, ok := o.Hosts[dst.ID]
	if !ok {
		return overlaynet.Received{}, fmt.Errorf("livebridge: unknown dst host %s", dst.Name)
	}
	if err := srcNode.SendVN(o.evo.AnycastAddr(), dstNode.VNAddr(), payload); err != nil {
		return overlaynet.Received{}, err
	}
	return dstNode.WaitInbox(timeout)
}

// ProvisionMulticast installs a multicast group's distribution tree
// (computed by the simulator's vncast layer) onto the live overlay: each
// on-tree member node gets its branch and leaf replication state. The
// source then sends a single packet to the group address and every live
// subscriber node receives a copy.
func (o *Overlay) ProvisionMulticast(svc *vncast.Service, grp *vncast.Group, src *topology.Host) (addr.VN, error) {
	tree, err := svc.BuildTree(grp, src)
	if err != nil {
		return addr.VN{}, err
	}
	// Collect the on-tree members (branch points plus leaf egresses).
	onTree := map[topology.RouterID]bool{tree.Ingress: true}
	for m := range tree.Branches {
		onTree[m] = true
	}
	for m := range tree.Leaves {
		onTree[m] = true
	}
	for m := range onTree {
		node, ok := o.Members[m]
		if !ok {
			return addr.VN{}, fmt.Errorf("livebridge: tree member %d not provisioned", m)
		}
		var branches, leaves []addr.V4
		for _, b := range tree.Branches[m] {
			branches = append(branches, o.evo.Net.Router(b).Loopback)
		}
		for _, h := range tree.Leaves[m] {
			leaves = append(leaves, h.Addr)
		}
		node.SetMulticastRoute(grp.Addr, branches, leaves)
	}
	return grp.Addr, nil
}

// SendMulticast originates one live packet from src toward the group
// address; the provisioned tree replicates it to every subscriber node.
func (o *Overlay) SendMulticast(src *topology.Host, group addr.VN, payload []byte) error {
	srcNode, ok := o.Hosts[src.ID]
	if !ok {
		return fmt.Errorf("livebridge: unknown src host %s", src.Name)
	}
	return srcNode.SendVN(o.evo.AnycastAddr(), group, payload)
}

// Close shuts every node down.
func (o *Overlay) Close() {
	for _, n := range o.Members {
		n.Close()
	}
	for _, n := range o.Hosts {
		n.Close()
	}
}
