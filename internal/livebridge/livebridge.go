// Package livebridge turns a simulated Evolution into a running overlay:
// one live UDP node per vN-Bone member and per endhost, with bone routes
// derived from the simulator's BGPvN decisions and anycast resolution
// delegated to the simulator's routing. The simulator is the control
// plane; the overlay is the data plane. Every packet a bridged Send
// delivers has crossed real sockets through the exact trajectory the
// simulation predicts.
//
// The overlay tracks deployment changes in place: Reconcile (or the
// Watch goroutine, driven by the Evolution's epoch publications) diffs
// the running overlay against the current routing epoch and applies only
// the delta — spawning and retiring nodes, patching route tables and
// anycast member lists — leaving unaffected nodes untouched. When a
// rebuild publishes an error epoch, the overlay degrades to its
// last-good configuration instead of tearing down.
package livebridge

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/overlaynet"
	"github.com/evolvable-net/evolve/internal/topology"
	"github.com/evolvable-net/evolve/internal/vncast"
)

// Overlay is a provisioned live overlay. Members and Hosts are owned by
// the reconciler; read them between reconciles (or after Close), not
// concurrently with one.
type Overlay struct {
	Reg     *overlaynet.Registry
	Members map[topology.RouterID]*overlaynet.Node
	Hosts   map[topology.HostID]*overlaynet.Node

	evo *core.Evolution

	mu sync.Mutex
	// lastRoutes caches each member's installed route table for diffing;
	// hostVN caches each host node's assigned IPvN address.
	lastRoutes map[topology.RouterID]map[addr.VNPrefix]addr.V4
	hostVN     map[topology.HostID]addr.VN
	// provisioned flips after the first successful reconcile; from then
	// on error epochs degrade to last-good instead of failing.
	provisioned bool

	liveCfg *overlaynet.LivenessConfig
	relCfg  *overlaynet.ReliableConfig
}

// desiredState is one epoch's target overlay shape.
type desiredState struct {
	// members maps each bone member to its loopback (the node underlay).
	members map[topology.RouterID]addr.V4
	// routes is each member's per-host /128 table: prefix → next hop.
	routes map[topology.RouterID]map[addr.VNPrefix]addr.V4
	// hosts maps each endhost to its IPvN address.
	hosts map[topology.HostID]addr.VN
}

// desired computes the target shape from the Evolution's current epoch.
// An error epoch yields an error; the caller decides whether that fails
// provisioning or degrades to last-good.
func (o *Overlay) desired() (*desiredState, error) {
	evo := o.evo
	bone, err := evo.Bone()
	if err != nil {
		return nil, err
	}
	vn, err := evo.VN()
	if err != nil {
		return nil, err
	}
	d := &desiredState{
		members: map[topology.RouterID]addr.V4{},
		routes:  map[topology.RouterID]map[addr.VNPrefix]addr.V4{},
		hosts:   map[topology.HostID]addr.VN{},
	}
	for _, m := range bone.Members() {
		d.members[m] = evo.Net.Router(m).Loopback
	}
	for _, h := range evo.Net.Hosts {
		v, err := evo.HostVNAddr(h)
		if err != nil {
			return nil, err
		}
		d.hosts[h.ID] = v
	}
	for m := range d.members {
		table := map[addr.VNPrefix]addr.V4{}
		for _, h := range evo.Net.Hosts {
			v := d.hosts[h.ID]
			var bonePath []topology.RouterID
			var egress topology.RouterID
			if v.IsSelf() {
				dec, err := vn.SelectEgress(m, h.Addr, evo.Config().Egress)
				if err != nil {
					return nil, fmt.Errorf("livebridge: egress for %s from %d: %w", h.Name, m, err)
				}
				bonePath, egress = dec.BonePath, dec.Member
			} else {
				dec, err := vn.RouteNative(m, v)
				if err != nil {
					return nil, fmt.Errorf("livebridge: native route for %s from %d: %w", h.Name, m, err)
				}
				bonePath, egress = dec.BonePath, dec.Member
			}
			if egress == m || len(bonePath) < 2 {
				// This member is the egress: exit straight to the host.
				table[addr.HostVNPrefix(v)] = h.Addr
			} else {
				table[addr.HostVNPrefix(v)] = o.evo.Net.Router(bonePath[1]).Loopback
			}
		}
		d.routes[m] = table
	}
	return d, nil
}

// Provision builds the live overlay for the Evolution's current
// deployment state. Close the returned overlay when done. Deployment
// changes after provisioning are applied in place by Reconcile (or
// automatically via Watch).
func Provision(evo *core.Evolution) (*Overlay, error) {
	o := &Overlay{
		Reg:        overlaynet.NewRegistry(),
		Members:    map[topology.RouterID]*overlaynet.Node{},
		Hosts:      map[topology.HostID]*overlaynet.Node{},
		evo:        evo,
		lastRoutes: map[topology.RouterID]map[addr.VNPrefix]addr.V4{},
		hostVN:     map[topology.HostID]addr.VN{},
	}

	// Anycast resolution delegates to the simulator's routing: the
	// ingress for a packet from src is whatever the simulated anycast
	// trajectory says. A nominee the live plane has suspected dead is
	// overridden by the Registry's proximity fallthrough.
	o.Reg.SetResolver(func(src, anycastAddr addr.V4) (addr.V4, bool) {
		var res topology.RouterID = -1
		if h := evo.Net.FindHost(src); h != nil {
			if r, err := evo.Anycast.ResolveFromHost(h, anycastAddr); err == nil {
				res = r.Member
			}
		} else if r := evo.Net.RouterByLoopback(src); r != nil {
			if rr, err := evo.Anycast.ResolveFromRouter(r.ID, anycastAddr); err == nil {
				res = rr.Member
			}
		}
		if res < 0 {
			return 0, false
		}
		return evo.Net.Router(res).Loopback, true
	})

	if err := o.Reconcile(); err != nil {
		o.Close()
		return nil, err
	}
	return o, nil
}

// Reconcile diffs the running overlay against the Evolution's current
// routing epoch and applies the delta in place: retired members are
// closed, new members spawned, changed route tables and host addresses
// patched, and the Registry's anycast member list refreshed. Unaffected
// nodes are never touched — their sockets, inboxes and counters carry
// across epochs. On an error epoch a provisioned overlay keeps its
// last-good configuration (counted as a reconcile fallback) and returns
// the epoch's error; an unprovisioned one fails.
func (o *Overlay) Reconcile() error {
	o.mu.Lock()
	defer o.mu.Unlock()

	d, err := o.desired()
	if err != nil {
		if o.provisioned {
			o.Reg.Counters().ReconcileFallback()
			return err
		}
		return err
	}

	deltas := 0

	// Retire members no longer in the bone.
	for id, n := range o.Members {
		if _, keep := d.members[id]; !keep {
			n.Close()
			delete(o.Members, id)
			delete(o.lastRoutes, id)
			deltas++
		}
	}
	// Spawn new members.
	for id, loopback := range d.members {
		if _, have := o.Members[id]; have {
			continue
		}
		n, err := overlaynet.NewNode(o.Reg, loopback)
		if err != nil {
			return err
		}
		n.ServeAnycast(o.evo.AnycastAddr())
		if o.liveCfg != nil {
			n.EnableLiveness(*o.liveCfg)
		}
		o.Members[id] = n
		deltas++
	}
	// Patch changed route tables wholesale (cheap: tables are small and
	// the swap is atomic per prefix under the node's lock).
	for id, table := range d.routes {
		if routesEqual(o.lastRoutes[id], table) {
			continue
		}
		n := o.Members[id]
		n.ClearVNRoutes()
		for p, via := range table {
			n.AddVNRoute(p, via)
		}
		o.lastRoutes[id] = table
		deltas++
	}

	// Hosts: spawn new, retire gone, re-address changed.
	for id, n := range o.Hosts {
		if _, keep := d.hosts[id]; !keep {
			n.Close()
			delete(o.Hosts, id)
			delete(o.hostVN, id)
			deltas++
		}
	}
	for _, h := range o.evo.Net.Hosts {
		v, ok := d.hosts[h.ID]
		if !ok {
			continue
		}
		if n, have := o.Hosts[h.ID]; have {
			if o.hostVN[h.ID] != v {
				n.SetVNAddr(v)
				o.hostVN[h.ID] = v
				deltas++
			}
			continue
		}
		n, err := overlaynet.NewNode(o.Reg, h.Addr)
		if err != nil {
			return err
		}
		n.SetVNAddr(v)
		if o.liveCfg != nil {
			n.EnableLiveness(*o.liveCfg)
		}
		if o.relCfg != nil {
			n.EnableReliable(*o.relCfg)
		}
		// A reliable send that exhausts its retransmission budget is the
		// live plane's per-flow delivery-failure signal: feed it back into
		// the simulator's flow-health layer (a no-op when the Evolution's
		// fallback layer is disabled).
		n.SetSendFailureObserver(func(dst addr.VN) { o.evo.ReportUnackedVN(dst) })
		o.Hosts[h.ID] = n
		deltas++
	}

	// Refresh the anycast member list (deterministic order: router ID) so
	// the Registry's proximity fallthrough has a live-member list even
	// when the simulator's resolver nominates a suspected peer.
	ids := make([]topology.RouterID, 0, len(d.members))
	for id := range d.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	members := make([]addr.V4, len(ids))
	for i, id := range ids {
		members[i] = d.members[id]
	}
	o.Reg.SetAnycastMembers(o.evo.AnycastAddr(), members)

	if deltas > 0 {
		o.Reg.Counters().ReconcileDeltas(deltas)
	}
	o.provisioned = true
	return nil
}

func routesEqual(a, b map[addr.VNPrefix]addr.V4) bool {
	if len(a) != len(b) {
		return false
	}
	for p, v := range a {
		if b[p] != v {
			return false
		}
	}
	return true
}

// Watch subscribes the overlay to the Evolution's epoch publications and
// reconciles after each one (coalesced). Error epochs are tolerated —
// the overlay degrades to last-good and retries on the next epoch. The
// returned stop function unsubscribes and waits for the watcher to exit.
func (o *Overlay) Watch() (stop func()) {
	ch, cancel := o.evo.WatchEpochs()
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-quit:
				return
			case <-ch:
				// Reconcile failures here are error epochs (fallback
				// counted inside) or socket exhaustion; the watcher keeps
				// going — the next good epoch heals the overlay.
				_ = o.Reconcile()
				// Each epoch tick also pushes the live plane's current
				// suspicion verdicts into the flow-health layer.
				o.FeedPeerHealth()
			}
		}
	}()
	return func() {
		cancel()
		close(quit)
		<-done
	}
}

// FeedPeerHealth pushes the live plane's current suspicion verdicts into
// the simulator's flow-health layer: every member node's peer-health
// table is scanned, suspected peers are mapped back to their bone
// routers, and each suspect is reported through
// Evolution.ReportPeerSuspect so flows whose memoised delivery skeletons
// ride through a suspected router degrade without waiting for their own
// delivery errors. Called from the Watch loop on every epoch tick; safe
// to call directly after a liveness sweep. Returns the number of
// flow-health records signalled (0 when the Evolution's fallback layer
// is disabled).
func (o *Overlay) FeedPeerHealth() int {
	o.mu.Lock()
	nodes := make([]*overlaynet.Node, 0, len(o.Members))
	for _, n := range o.Members {
		nodes = append(nodes, n)
	}
	o.mu.Unlock()
	suspects := map[topology.RouterID]bool{}
	for _, n := range nodes {
		for _, ps := range n.PeerHealth() {
			if !ps.Suspected {
				continue
			}
			if r := o.evo.Net.RouterByLoopback(ps.Peer); r != nil {
				suspects[r.ID] = true
			}
		}
	}
	total := 0
	for id := range suspects {
		total += o.evo.ReportPeerSuspect(id)
	}
	return total
}

// EnableLiveness turns on keepalive probing for every current and future
// overlay node (see overlaynet.LivenessConfig).
func (o *Overlay) EnableLiveness(cfg overlaynet.LivenessConfig) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.liveCfg = &cfg
	for _, n := range o.Members {
		n.EnableLiveness(cfg)
	}
	for _, n := range o.Hosts {
		n.EnableLiveness(cfg)
	}
}

// EnableReliable turns on the acked/retransmitting delivery mode for
// every current and future host node. cfg.AckVia defaults to the
// deployment's anycast address.
func (o *Overlay) EnableReliable(cfg overlaynet.ReliableConfig) {
	if cfg.AckVia == 0 {
		cfg.AckVia = o.evo.AnycastAddr()
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.relCfg = &cfg
	for _, n := range o.Hosts {
		n.EnableReliable(cfg)
	}
}

// Send delivers a payload from src to dst over the live overlay (host
// encapsulates toward the anycast address; relays and exits follow the
// provisioned routes) and waits for the destination's inbox.
func (o *Overlay) Send(src, dst *topology.Host, payload []byte, timeout time.Duration) (overlaynet.Received, error) {
	srcNode, dstNode, err := o.hostPair(src, dst)
	if err != nil {
		return overlaynet.Received{}, err
	}
	if err := srcNode.SendVN(o.evo.AnycastAddr(), dstNode.VNAddr(), payload); err != nil {
		return overlaynet.Received{}, err
	}
	return dstNode.WaitInbox(timeout)
}

// SendReliable is Send in the acked/retransmitting mode (EnableReliable
// first): it returns once the destination has acknowledged the delivery
// and the payload has been popped from its inbox.
func (o *Overlay) SendReliable(src, dst *topology.Host, payload []byte, timeout time.Duration) (overlaynet.Received, error) {
	srcNode, dstNode, err := o.hostPair(src, dst)
	if err != nil {
		return overlaynet.Received{}, err
	}
	if err := srcNode.SendVNReliable(o.evo.AnycastAddr(), dstNode.VNAddr(), payload); err != nil {
		return overlaynet.Received{}, err
	}
	return dstNode.WaitInbox(timeout)
}

func (o *Overlay) hostPair(src, dst *topology.Host) (*overlaynet.Node, *overlaynet.Node, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	srcNode, ok := o.Hosts[src.ID]
	if !ok {
		return nil, nil, fmt.Errorf("livebridge: unknown src host %s", src.Name)
	}
	dstNode, ok := o.Hosts[dst.ID]
	if !ok {
		return nil, nil, fmt.Errorf("livebridge: unknown dst host %s", dst.Name)
	}
	return srcNode, dstNode, nil
}

// ProvisionMulticast installs a multicast group's distribution tree
// (computed by the simulator's vncast layer) onto the live overlay: each
// on-tree member node gets its branch and leaf replication state. The
// source then sends a single packet to the group address and every live
// subscriber node receives a copy.
func (o *Overlay) ProvisionMulticast(svc *vncast.Service, grp *vncast.Group, src *topology.Host) (addr.VN, error) {
	tree, err := svc.BuildTree(grp, src)
	if err != nil {
		return addr.VN{}, err
	}
	// Collect the on-tree members (branch points plus leaf egresses).
	onTree := map[topology.RouterID]bool{tree.Ingress: true}
	for m := range tree.Branches {
		onTree[m] = true
	}
	for m := range tree.Leaves {
		onTree[m] = true
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for m := range onTree {
		node, ok := o.Members[m]
		if !ok {
			return addr.VN{}, fmt.Errorf("livebridge: tree member %d not provisioned", m)
		}
		var branches, leaves []addr.V4
		for _, b := range tree.Branches[m] {
			branches = append(branches, o.evo.Net.Router(b).Loopback)
		}
		for _, h := range tree.Leaves[m] {
			leaves = append(leaves, h.Addr)
		}
		node.SetMulticastRoute(grp.Addr, branches, leaves)
	}
	return grp.Addr, nil
}

// SendMulticast originates one live packet from src toward the group
// address; the provisioned tree replicates it to every subscriber node.
func (o *Overlay) SendMulticast(src *topology.Host, group addr.VN, payload []byte) error {
	o.mu.Lock()
	srcNode, ok := o.Hosts[src.ID]
	o.mu.Unlock()
	if !ok {
		return fmt.Errorf("livebridge: unknown src host %s", src.Name)
	}
	return srcNode.SendVN(o.evo.AnycastAddr(), group, payload)
}

// Close shuts every node down.
func (o *Overlay) Close() {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, n := range o.Members {
		n.Close()
	}
	for _, n := range o.Hosts {
		n.Close()
	}
}
