package rib

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/evolvable-net/evolve/internal/addr"
)

func TestTable4LongestMatch(t *testing.T) {
	var tbl Table4[string]
	tbl.Insert(addr.MustParsePrefix("0.0.0.0/0"), "default")
	tbl.Insert(addr.MustParsePrefix("10.0.0.0/8"), "ten")
	tbl.Insert(addr.MustParsePrefix("10.1.0.0/16"), "ten-one")
	tbl.Insert(addr.MustParsePrefix("10.1.2.3/32"), "host")

	cases := []struct {
		a    string
		want string
	}{
		{"11.0.0.1", "default"},
		{"10.9.9.9", "ten"},
		{"10.1.9.9", "ten-one"},
		{"10.1.2.3", "host"},
	}
	for _, c := range cases {
		v, p, ok := tbl.Lookup(addr.MustParseV4(c.a))
		if !ok || v != c.want {
			t.Errorf("Lookup(%s) = %q (prefix %s), want %q", c.a, v, p, c.want)
		}
	}
}

func TestTable4NoMatch(t *testing.T) {
	var tbl Table4[int]
	tbl.Insert(addr.MustParsePrefix("10.0.0.0/8"), 1)
	if _, _, ok := tbl.Lookup(addr.MustParseV4("11.0.0.1")); ok {
		t.Error("lookup outside all prefixes should fail")
	}
	var empty Table4[int]
	if _, _, ok := empty.Lookup(0); ok {
		t.Error("empty table lookup should fail")
	}
}

func TestTable4InsertReplaces(t *testing.T) {
	var tbl Table4[int]
	p := addr.MustParsePrefix("10.0.0.0/8")
	tbl.Insert(p, 1)
	tbl.Insert(p, 2)
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
	v, _, _ := tbl.Lookup(addr.MustParseV4("10.0.0.1"))
	if v != 2 {
		t.Errorf("value = %d", v)
	}
}

func TestTable4Delete(t *testing.T) {
	var tbl Table4[int]
	outer := addr.MustParsePrefix("10.0.0.0/8")
	inner := addr.MustParsePrefix("10.1.0.0/16")
	tbl.Insert(outer, 1)
	tbl.Insert(inner, 2)
	if !tbl.Delete(inner) {
		t.Fatal("delete existing failed")
	}
	if tbl.Delete(inner) {
		t.Error("double delete succeeded")
	}
	v, _, ok := tbl.Lookup(addr.MustParseV4("10.1.0.1"))
	if !ok || v != 1 {
		t.Errorf("after delete, lookup = %d, %v (want fall back to outer)", v, ok)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestTable4Exact(t *testing.T) {
	var tbl Table4[int]
	tbl.Insert(addr.MustParsePrefix("10.0.0.0/8"), 1)
	if _, ok := tbl.Exact(addr.MustParsePrefix("10.0.0.0/9")); ok {
		t.Error("exact on absent length matched")
	}
	if v, ok := tbl.Exact(addr.MustParsePrefix("10.0.0.0/8")); !ok || v != 1 {
		t.Error("exact on present prefix failed")
	}
}

func TestTable4DefaultRouteOnly(t *testing.T) {
	var tbl Table4[string]
	tbl.Insert(addr.MustParsePrefix("0.0.0.0/0"), "d")
	v, p, ok := tbl.Lookup(addr.MustParseV4("1.2.3.4"))
	if !ok || v != "d" || p.Len != 0 {
		t.Errorf("default route lookup = %q %s %v", v, p, ok)
	}
}

func TestTable4Walk(t *testing.T) {
	var tbl Table4[int]
	prefixes := []string{"0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/24"}
	for i, s := range prefixes {
		tbl.Insert(addr.MustParsePrefix(s), i)
	}
	seen := map[string]int{}
	tbl.Walk(func(p addr.Prefix, v int) bool {
		seen[p.String()] = v
		return true
	})
	if len(seen) != len(prefixes) {
		t.Fatalf("walk visited %d entries: %v", len(seen), seen)
	}
	for i, s := range prefixes {
		want := addr.MustParsePrefix(s).String()
		if seen[want] != i {
			t.Errorf("walk[%s] = %d, want %d", want, seen[want], i)
		}
	}
	// Early stop.
	n := 0
	tbl.Walk(func(addr.Prefix, int) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

// linearTable is a brute-force longest-prefix-match oracle.
type linearTable struct {
	entries []struct {
		p addr.Prefix
		v int
	}
}

func (l *linearTable) insert(p addr.Prefix, v int) {
	for i := range l.entries {
		if l.entries[i].p == p {
			l.entries[i].v = v
			return
		}
	}
	l.entries = append(l.entries, struct {
		p addr.Prefix
		v int
	}{p, v})
}

func (l *linearTable) lookup(a addr.V4) (int, bool) {
	best := -1
	bestLen := -1
	for _, e := range l.entries {
		if e.p.Contains(a) && int(e.p.Len) > bestLen {
			best, bestLen = e.v, int(e.p.Len)
		}
	}
	return best, bestLen >= 0
}

func TestTable4MatchesLinearOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tbl Table4[int]
		var oracle linearTable
		for i := 0; i < 40; i++ {
			p := addr.MakePrefix(addr.V4(rng.Uint32()), uint8(rng.Intn(33)))
			tbl.Insert(p, i)
			oracle.insert(p, i)
		}
		for i := 0; i < 200; i++ {
			a := addr.V4(rng.Uint32())
			got, gotOK, _ := func() (int, bool, addr.Prefix) {
				v, p, ok := tbl.Lookup(a)
				return v, ok, p
			}()
			want, wantOK := oracle.lookup(a)
			if gotOK != wantOK || (gotOK && got != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTableVNLongestMatch(t *testing.T) {
	var tbl TableVN[string]
	d7 := addr.DomainVNPrefix(7)
	d8 := addr.DomainVNPrefix(8)
	tbl.Insert(d7, "seven")
	tbl.Insert(d8, "eight")
	host := addr.VN{Hi: d7.Addr.Hi, Lo: 42}
	tbl.Insert(addr.HostVNPrefix(host), "host")

	if v, _, ok := tbl.Lookup(host); !ok || v != "host" {
		t.Errorf("host lookup = %q %v", v, ok)
	}
	other := addr.VN{Hi: d7.Addr.Hi, Lo: 43}
	if v, _, ok := tbl.Lookup(other); !ok || v != "seven" {
		t.Errorf("domain lookup = %q %v", v, ok)
	}
	if v, _, ok := tbl.Lookup(addr.VN{Hi: d8.Addr.Hi, Lo: 1}); !ok || v != "eight" {
		t.Errorf("other-domain lookup = %q %v", v, ok)
	}
	if _, _, ok := tbl.Lookup(addr.SelfAddress(1)); ok {
		t.Error("self address should not match native prefixes")
	}
}

func TestTableVNSelfPrefix(t *testing.T) {
	// A /1 on the self-flag bit catches every self-address: this is how an
	// egress policy can route "all temporary addresses" specially.
	var tbl TableVN[string]
	selfAll := addr.MakeVNPrefix(addr.SelfAddress(0), 1)
	tbl.Insert(selfAll, "self")
	if v, _, ok := tbl.Lookup(addr.SelfAddress(addr.MustParseV4("10.0.0.1"))); !ok || v != "self" {
		t.Errorf("self catch-all = %q %v", v, ok)
	}
	if _, _, ok := tbl.Lookup(addr.VN{Hi: 1}); ok {
		t.Error("native address matched self catch-all")
	}
}

func TestTableVNDeleteAndWalk(t *testing.T) {
	var tbl TableVN[int]
	for asn := 1; asn <= 10; asn++ {
		tbl.Insert(addr.DomainVNPrefix(asn), asn)
	}
	if tbl.Len() != 10 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if !tbl.Delete(addr.DomainVNPrefix(5)) {
		t.Fatal("delete failed")
	}
	sum := 0
	tbl.Walk(func(_ addr.VNPrefix, v int) bool { sum += v; return true })
	if sum != 55-5 {
		t.Errorf("walk sum = %d", sum)
	}
	if _, _, ok := tbl.Lookup(addr.VN{Hi: addr.DomainVNPrefix(5).Addr.Hi, Lo: 9}); ok {
		t.Error("deleted prefix still matches")
	}
}

func TestTableVNExactBitBoundary(t *testing.T) {
	// Exercise prefixes straddling the 64-bit boundary of the key.
	var tbl TableVN[int]
	p := addr.MakeVNPrefix(addr.VN{Hi: 0xDEADBEEF, Lo: 0xF000000000000000}, 68)
	tbl.Insert(p, 1)
	if v, ok := tbl.Exact(p); !ok || v != 1 {
		t.Error("exact at 68 bits failed")
	}
	inside := addr.VN{Hi: 0xDEADBEEF, Lo: 0xF800000000000000}
	if v, _, ok := tbl.Lookup(inside); !ok || v != 1 {
		t.Error("lookup inside 68-bit prefix failed")
	}
	outside := addr.VN{Hi: 0xDEADBEEF, Lo: 0x0800000000000000}
	if _, _, ok := tbl.Lookup(outside); ok {
		t.Error("lookup outside 68-bit prefix matched")
	}
}

func TestTable4PruneOnDelete(t *testing.T) {
	var tbl Table4[int]
	if tbl.NodeCount() != 0 {
		t.Fatalf("empty NodeCount = %d", tbl.NodeCount())
	}
	outer := addr.MustParsePrefix("10.0.0.0/8")
	inner := addr.MustParsePrefix("10.1.2.0/24")
	tbl.Insert(outer, 1)
	after8 := tbl.NodeCount()
	tbl.Insert(inner, 2)
	if tbl.NodeCount() != after8+16 {
		t.Fatalf("NodeCount = %d after /24 under /8, want %d", tbl.NodeCount(), after8+16)
	}
	// Deleting the /24 must prune the 16 interior nodes back to the /8.
	if !tbl.Delete(inner) {
		t.Fatal("delete failed")
	}
	if tbl.NodeCount() != after8 {
		t.Fatalf("NodeCount = %d after pruning /24, want %d", tbl.NodeCount(), after8)
	}
	// Deleting the /8 empties the trie completely.
	if !tbl.Delete(outer) {
		t.Fatal("delete failed")
	}
	if tbl.NodeCount() != 0 || tbl.Len() != 0 {
		t.Fatalf("NodeCount = %d, Len = %d after full drain", tbl.NodeCount(), tbl.Len())
	}
	// A set interior node must survive the deletion of its descendant.
	tbl.Insert(outer, 1)
	tbl.Insert(inner, 2)
	tbl.Delete(outer)
	if _, ok := tbl.Exact(inner); !ok {
		t.Fatal("descendant lost when ancestor deleted")
	}
}

func TestTable4ChurnMemoryBounded(t *testing.T) {
	// Sustained insert/delete churn must not grow the node count: this
	// is the leak that made long-lived million-prefix tables impossible.
	rng := rand.New(rand.NewSource(42))
	var tbl Table4[int]
	resident := make([]addr.Prefix, 0, 256)
	for i := 0; i < 256; i++ {
		p := addr.MakePrefix(addr.V4(rng.Uint32()), uint8(8+rng.Intn(25)))
		tbl.Insert(p, i)
		resident = append(resident, p)
	}
	baseline := tbl.NodeCount()
	for cycle := 0; cycle < 50; cycle++ {
		var churn []addr.Prefix
		for i := 0; i < 512; i++ {
			p := addr.MakePrefix(addr.V4(rng.Uint32()), uint8(16+rng.Intn(17)))
			tbl.Insert(p, i)
			churn = append(churn, p)
		}
		for _, p := range churn {
			tbl.Delete(p)
		}
	}
	for _, p := range resident {
		tbl.Delete(p)
	}
	if got := tbl.NodeCount() + len(resident); tbl.NodeCount() != 0 {
		t.Fatalf("NodeCount = %d after churn drain, want 0 (baseline with residents was %d, probe %d)", tbl.NodeCount(), baseline, got)
	}
}

func TestTable4Matches(t *testing.T) {
	var tbl Table4[string]
	tbl.Insert(addr.MustParsePrefix("0.0.0.0/0"), "default")
	tbl.Insert(addr.MustParsePrefix("10.0.0.0/8"), "ten")
	tbl.Insert(addr.MustParsePrefix("10.1.0.0/16"), "ten-one")
	tbl.Insert(addr.MustParsePrefix("192.168.0.0/16"), "private")

	var got []string
	tbl.Matches(addr.MustParseV4("10.1.2.3"), func(_ addr.Prefix, v string) bool {
		got = append(got, v)
		return true
	})
	want := []string{"ten-one", "ten", "default"}
	if len(got) != len(want) {
		t.Fatalf("Matches chain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Matches chain = %v, want %v", got, want)
		}
	}
	// Early stop after the longest match.
	n := 0
	tbl.Matches(addr.MustParseV4("10.1.2.3"), func(addr.Prefix, string) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestTableVNPruneOnDelete(t *testing.T) {
	var tbl TableVN[int]
	for asn := 1; asn <= 100; asn++ {
		tbl.Insert(addr.DomainVNPrefix(asn), asn)
	}
	for asn := 1; asn <= 100; asn++ {
		if !tbl.Delete(addr.DomainVNPrefix(asn)) {
			t.Fatalf("delete asn %d failed", asn)
		}
	}
	if tbl.NodeCount() != 0 || tbl.Len() != 0 {
		t.Fatalf("NodeCount = %d, Len = %d after full drain", tbl.NodeCount(), tbl.Len())
	}
}

func BenchmarkTable4Lookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var tbl Table4[int]
	for i := 0; i < 10000; i++ {
		tbl.Insert(addr.MakePrefix(addr.V4(rng.Uint32()), uint8(8+rng.Intn(25))), i)
	}
	addrs := make([]addr.V4, 1024)
	for i := range addrs {
		addrs[i] = addr.V4(rng.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkTableVNLookup(b *testing.B) {
	var tbl TableVN[int]
	for asn := 0; asn < 10000; asn++ {
		tbl.Insert(addr.DomainVNPrefix(asn), asn)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addr.VN{Hi: addr.DomainVNPrefix(i % 10000).Addr.Hi, Lo: 7})
	}
}
