// Package rib implements longest-prefix-match routing tables as binary
// tries, for both the 32-bit underlay address space and the 128-bit IPvN
// space. These are the FIB/RIB structures used by every router in the
// simulator and by the live overlay prototype.
package rib

import (
	"github.com/evolvable-net/evolve/internal/addr"
)

// key is a left-aligned 128-bit bit string with a length. V4 prefixes are
// mapped into the top 32 bits.
type key struct {
	hi, lo uint64
	length uint8
}

func (k key) bit(i uint8) byte {
	if i < 64 {
		return byte(k.hi >> (63 - i) & 1)
	}
	return byte(k.lo >> (127 - i) & 1)
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

type trie[V any] struct {
	root *node[V]
	size int
}

func (t *trie[V]) insert(k key, v V) {
	if t.root == nil {
		t.root = &node[V]{}
	}
	n := t.root
	for i := uint8(0); i < k.length; i++ {
		b := k.bit(i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = v, true
}

func (t *trie[V]) remove(k key) bool {
	if t.root == nil {
		return false
	}
	n := t.root
	for i := uint8(0); i < k.length; i++ {
		n = n.child[k.bit(i)]
		if n == nil {
			return false
		}
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// lookup returns the value of the longest set prefix along the key's bits,
// plus the matched length.
func (t *trie[V]) lookup(k key) (v V, matched uint8, ok bool) {
	n := t.root
	if n == nil {
		return v, 0, false
	}
	depth := uint8(0)
	if n.set {
		v, matched, ok = n.val, 0, true
	}
	for depth < k.length {
		n = n.child[k.bit(depth)]
		if n == nil {
			break
		}
		depth++
		if n.set {
			v, matched, ok = n.val, depth, true
		}
	}
	return v, matched, ok
}

// exact returns the value stored at exactly the given prefix.
func (t *trie[V]) exact(k key) (v V, ok bool) {
	n := t.root
	if n == nil {
		return v, false
	}
	for i := uint8(0); i < k.length; i++ {
		n = n.child[k.bit(i)]
		if n == nil {
			return v, false
		}
	}
	return n.val, n.set
}

func (t *trie[V]) walk(n *node[V], k key, fn func(key, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set && !fn(k, n.val) {
		return false
	}
	for b := byte(0); b < 2; b++ {
		child := n.child[b]
		if child == nil {
			continue
		}
		ck := k
		ck.length++
		if b == 1 {
			if k.length < 64 {
				ck.hi |= 1 << (63 - k.length)
			} else {
				ck.lo |= 1 << (127 - k.length)
			}
		}
		if !t.walk(child, ck, fn) {
			return false
		}
	}
	return true
}

// Table4 is a longest-prefix-match table over the underlay address space.
// The zero value is an empty table ready to use.
type Table4[V any] struct {
	t trie[V]
}

func key4(p addr.Prefix) key {
	return key{hi: uint64(uint32(p.Addr)) << 32, length: p.Len}
}

// Insert adds or replaces the route for prefix p.
func (t *Table4[V]) Insert(p addr.Prefix, v V) { t.t.insert(key4(p), v) }

// Delete removes the route for exactly p, reporting whether it existed.
func (t *Table4[V]) Delete(p addr.Prefix) bool { return t.t.remove(key4(p)) }

// Lookup returns the value of the longest prefix containing a.
func (t *Table4[V]) Lookup(a addr.V4) (V, addr.Prefix, bool) {
	v, l, ok := t.t.lookup(key{hi: uint64(uint32(a)) << 32, length: 32})
	if !ok {
		var zero V
		return zero, addr.Prefix{}, false
	}
	return v, addr.MakePrefix(a, l), true
}

// Exact returns the value stored for exactly p.
func (t *Table4[V]) Exact(p addr.Prefix) (V, bool) { return t.t.exact(key4(p)) }

// Len returns the number of routes.
func (t *Table4[V]) Len() int { return t.t.size }

// Walk visits every route in bit order; returning false from fn stops the
// walk early.
func (t *Table4[V]) Walk(fn func(addr.Prefix, V) bool) {
	t.t.walk(t.t.root, key{}, func(k key, v V) bool {
		return fn(addr.Prefix{Addr: addr.V4(uint32(k.hi >> 32)), Len: k.length}, v)
	})
}

// TableVN is a longest-prefix-match table over the IPvN address space.
// The zero value is an empty table ready to use.
type TableVN[V any] struct {
	t trie[V]
}

func keyVN(p addr.VNPrefix) key {
	return key{hi: p.Addr.Hi, lo: p.Addr.Lo, length: p.Len}
}

// Insert adds or replaces the route for prefix p.
func (t *TableVN[V]) Insert(p addr.VNPrefix, v V) { t.t.insert(keyVN(p), v) }

// Delete removes the route for exactly p, reporting whether it existed.
func (t *TableVN[V]) Delete(p addr.VNPrefix) bool { return t.t.remove(keyVN(p)) }

// Lookup returns the value of the longest prefix containing a.
func (t *TableVN[V]) Lookup(a addr.VN) (V, addr.VNPrefix, bool) {
	v, l, ok := t.t.lookup(key{hi: a.Hi, lo: a.Lo, length: 128})
	if !ok {
		var zero V
		return zero, addr.VNPrefix{}, false
	}
	return v, addr.MakeVNPrefix(a, l), true
}

// Exact returns the value stored for exactly p.
func (t *TableVN[V]) Exact(p addr.VNPrefix) (V, bool) { return t.t.exact(keyVN(p)) }

// Len returns the number of routes.
func (t *TableVN[V]) Len() int { return t.t.size }

// Walk visits every route in bit order; returning false from fn stops the
// walk early.
func (t *TableVN[V]) Walk(fn func(addr.VNPrefix, V) bool) {
	t.t.walk(t.t.root, key{}, func(k key, v V) bool {
		return fn(addr.VNPrefix{Addr: addr.VN{Hi: k.hi, Lo: k.lo}, Len: k.length}, v)
	})
}
