// Package rib implements longest-prefix-match routing tables as binary
// tries, for both the 32-bit underlay address space and the 128-bit IPvN
// space. These are the FIB/RIB structures used by every router in the
// simulator and by the live overlay prototype.
package rib

import (
	"github.com/evolvable-net/evolve/internal/addr"
)

// key is a left-aligned 128-bit bit string with a length. V4 prefixes are
// mapped into the top 32 bits.
type key struct {
	hi, lo uint64
	length uint8
}

func (k key) bit(i uint8) byte {
	if i < 64 {
		return byte(k.hi >> (63 - i) & 1)
	}
	return byte(k.lo >> (127 - i) & 1)
}

// prefix returns the first l bits of k as a key of length l.
func (k key) prefix(l uint8) key {
	p := key{length: l}
	switch {
	case l == 0:
	case l < 64:
		p.hi = k.hi &^ (1<<(64-l) - 1)
	case l == 64:
		p.hi = k.hi
	case l < 128:
		p.hi, p.lo = k.hi, k.lo&^(1<<(128-l)-1)
	default:
		p.hi, p.lo = k.hi, k.lo
	}
	return p
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

type trie[V any] struct {
	root  *node[V]
	size  int
	nodes int
}

func (t *trie[V]) insert(k key, v V) {
	if t.root == nil {
		t.root = &node[V]{}
		t.nodes++
	}
	n := t.root
	for i := uint8(0); i < k.length; i++ {
		b := k.bit(i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
			t.nodes++
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = v, true
}

// remove deletes the route at exactly k and prunes any interior nodes
// left with no value and no children, so sustained insert/delete churn
// keeps the trie at the size of its live routes.
func (t *trie[V]) remove(k key) bool {
	if t.root == nil {
		return false
	}
	// path[i] is the node at depth i; path[k.length] is the target.
	path := make([]*node[V], k.length+1)
	path[0] = t.root
	for i := uint8(0); i < k.length; i++ {
		path[i+1] = path[i].child[k.bit(i)]
		if path[i+1] == nil {
			return false
		}
	}
	n := path[k.length]
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	for d := int(k.length); d >= 0; d-- {
		n := path[d]
		if n.set || n.child[0] != nil || n.child[1] != nil {
			break
		}
		t.nodes--
		if d == 0 {
			t.root = nil
		} else {
			path[d-1].child[k.bit(uint8(d-1))] = nil
		}
	}
	return true
}

// matches collects every set prefix along the key's bits, longest first —
// the full LPM chain rather than only the single best match.
func (t *trie[V]) matches(k key, fn func(key, V) bool) {
	n := t.root
	if n == nil {
		return
	}
	type hit struct {
		k key
		n *node[V]
	}
	var hits []hit
	if n.set {
		hits = append(hits, hit{key{}, n})
	}
	for depth := uint8(0); depth < k.length; depth++ {
		n = n.child[k.bit(depth)]
		if n == nil {
			break
		}
		if n.set {
			hits = append(hits, hit{k.prefix(depth + 1), n})
		}
	}
	for i := len(hits) - 1; i >= 0; i-- {
		if !fn(hits[i].k, hits[i].n.val) {
			return
		}
	}
}

// lookup returns the value of the longest set prefix along the key's bits,
// plus the matched length.
func (t *trie[V]) lookup(k key) (v V, matched uint8, ok bool) {
	n := t.root
	if n == nil {
		return v, 0, false
	}
	depth := uint8(0)
	if n.set {
		v, matched, ok = n.val, 0, true
	}
	for depth < k.length {
		n = n.child[k.bit(depth)]
		if n == nil {
			break
		}
		depth++
		if n.set {
			v, matched, ok = n.val, depth, true
		}
	}
	return v, matched, ok
}

// exact returns the value stored at exactly the given prefix.
func (t *trie[V]) exact(k key) (v V, ok bool) {
	n := t.root
	if n == nil {
		return v, false
	}
	for i := uint8(0); i < k.length; i++ {
		n = n.child[k.bit(i)]
		if n == nil {
			return v, false
		}
	}
	return n.val, n.set
}

func (t *trie[V]) walk(n *node[V], k key, fn func(key, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set && !fn(k, n.val) {
		return false
	}
	for b := byte(0); b < 2; b++ {
		child := n.child[b]
		if child == nil {
			continue
		}
		ck := k
		ck.length++
		if b == 1 {
			if k.length < 64 {
				ck.hi |= 1 << (63 - k.length)
			} else {
				ck.lo |= 1 << (127 - k.length)
			}
		}
		if !t.walk(child, ck, fn) {
			return false
		}
	}
	return true
}

// Table4 is a longest-prefix-match table over the underlay address space.
// The zero value is an empty table ready to use.
type Table4[V any] struct {
	t trie[V]
}

func key4(p addr.Prefix) key {
	return key{hi: uint64(uint32(p.Addr)) << 32, length: p.Len}
}

// Insert adds or replaces the route for prefix p.
func (t *Table4[V]) Insert(p addr.Prefix, v V) { t.t.insert(key4(p), v) }

// Delete removes the route for exactly p, reporting whether it existed.
func (t *Table4[V]) Delete(p addr.Prefix) bool { return t.t.remove(key4(p)) }

// Lookup returns the value of the longest prefix containing a.
func (t *Table4[V]) Lookup(a addr.V4) (V, addr.Prefix, bool) {
	v, l, ok := t.t.lookup(key{hi: uint64(uint32(a)) << 32, length: 32})
	if !ok {
		var zero V
		return zero, addr.Prefix{}, false
	}
	return v, addr.MakePrefix(a, l), true
}

// Exact returns the value stored for exactly p.
func (t *Table4[V]) Exact(p addr.Prefix) (V, bool) { return t.t.exact(key4(p)) }

// Len returns the number of routes.
func (t *Table4[V]) Len() int { return t.t.size }

// NodeCount returns the number of allocated trie nodes — the memory
// footprint oracle. Deleting every route returns it to zero.
func (t *Table4[V]) NodeCount() int { return t.t.nodes }

// Matches visits every stored prefix containing a, longest first —
// the whole LPM chain rather than only the best match. Returning false
// from fn stops the walk early.
func (t *Table4[V]) Matches(a addr.V4, fn func(addr.Prefix, V) bool) {
	t.t.matches(key{hi: uint64(uint32(a)) << 32, length: 32}, func(k key, v V) bool {
		return fn(addr.Prefix{Addr: addr.V4(uint32(k.hi >> 32)), Len: k.length}, v)
	})
}

// Walk visits every route in bit order; returning false from fn stops the
// walk early.
func (t *Table4[V]) Walk(fn func(addr.Prefix, V) bool) {
	t.t.walk(t.t.root, key{}, func(k key, v V) bool {
		return fn(addr.Prefix{Addr: addr.V4(uint32(k.hi >> 32)), Len: k.length}, v)
	})
}

// TableVN is a longest-prefix-match table over the IPvN address space.
// The zero value is an empty table ready to use.
type TableVN[V any] struct {
	t trie[V]
}

func keyVN(p addr.VNPrefix) key {
	return key{hi: p.Addr.Hi, lo: p.Addr.Lo, length: p.Len}
}

// Insert adds or replaces the route for prefix p.
func (t *TableVN[V]) Insert(p addr.VNPrefix, v V) { t.t.insert(keyVN(p), v) }

// Delete removes the route for exactly p, reporting whether it existed.
func (t *TableVN[V]) Delete(p addr.VNPrefix) bool { return t.t.remove(keyVN(p)) }

// Lookup returns the value of the longest prefix containing a.
func (t *TableVN[V]) Lookup(a addr.VN) (V, addr.VNPrefix, bool) {
	v, l, ok := t.t.lookup(key{hi: a.Hi, lo: a.Lo, length: 128})
	if !ok {
		var zero V
		return zero, addr.VNPrefix{}, false
	}
	return v, addr.MakeVNPrefix(a, l), true
}

// Exact returns the value stored for exactly p.
func (t *TableVN[V]) Exact(p addr.VNPrefix) (V, bool) { return t.t.exact(keyVN(p)) }

// Len returns the number of routes.
func (t *TableVN[V]) Len() int { return t.t.size }

// NodeCount returns the number of allocated trie nodes — the memory
// footprint oracle. Deleting every route returns it to zero.
func (t *TableVN[V]) NodeCount() int { return t.t.nodes }

// Matches visits every stored prefix containing a, longest first —
// the whole LPM chain rather than only the best match. Returning false
// from fn stops the walk early.
func (t *TableVN[V]) Matches(a addr.VN, fn func(addr.VNPrefix, V) bool) {
	t.t.matches(key{hi: a.Hi, lo: a.Lo, length: 128}, func(k key, v V) bool {
		return fn(addr.VNPrefix{Addr: addr.VN{Hi: k.hi, Lo: k.lo}, Len: k.length}, v)
	})
}

// Walk visits every route in bit order; returning false from fn stops the
// walk early.
func (t *TableVN[V]) Walk(fn func(addr.VNPrefix, V) bool) {
	t.t.walk(t.t.root, key{}, func(k key, v V) bool {
		return fn(addr.VNPrefix{Addr: addr.VN{Hi: k.hi, Lo: k.lo}, Len: k.length}, v)
	})
}
