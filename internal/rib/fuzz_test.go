package rib

import (
	"encoding/binary"
	"testing"

	"github.com/evolvable-net/evolve/internal/addr"
)

// Fuzz targets: the binary-trie tables against a linear-scan oracle.
// Arbitrary bytes are decoded into a route set (with deletions) plus
// probe addresses; for every probe, trie Lookup must agree with the
// obviously-correct oracle — same hit/miss, same matched prefix, same
// value. Prefixes are canonicalized on decode exactly as MakePrefix
// does, so last-insert-wins semantics line up between table and oracle.

// decode4 splits fuzz input into canonical V4 prefix records. Each
// 5-byte record is (addr:4, len:1); the high bit of the length byte
// flags the record as a deletion of everything decoded so far at that
// prefix.
func decode4(data []byte) (ins []addr.Prefix, del []bool) {
	for len(data) >= 5 {
		a := addr.V4(binary.BigEndian.Uint32(data[:4]))
		l := data[4]
		ins = append(ins, addr.MakePrefix(a, l%33))
		del = append(del, l&0x80 != 0)
		data = data[5:]
	}
	return ins, del
}

func FuzzTable4Lookup(f *testing.F) {
	seed := func(parts ...[]byte) {
		var b []byte
		for _, p := range parts {
			b = append(b, p...)
		}
		f.Add(b)
	}
	rec := func(a, b, c, d, l byte) []byte { return []byte{a, b, c, d, l} }
	seed(rec(10, 0, 0, 0, 8))
	seed(rec(10, 0, 0, 0, 8), rec(10, 1, 0, 0, 16), rec(10, 1, 2, 0, 24), []byte{10, 1, 2, 3})
	seed(rec(0, 0, 0, 0, 0), rec(255, 255, 255, 255, 32))                 // default route + host route
	seed(rec(10, 0, 0, 0, 8), rec(10, 0, 0, 0, 8|0x80), []byte{10, 9, 9}) // insert then delete
	seed(rec(192, 168, 0, 0, 16), rec(192, 168, 0, 0, 24), rec(192, 168, 0, 0, 16|0x80))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, dels := decode4(data)
		var table Table4[int]
		oracle := map[addr.Prefix]int{}
		for i, p := range recs {
			if dels[i] {
				got := table.Delete(p)
				_, want := oracle[p]
				if got != want {
					t.Fatalf("Delete(%v) = %v, oracle had-entry %v", p, got, want)
				}
				delete(oracle, p)
				continue
			}
			table.Insert(p, i)
			oracle[p] = i
		}
		if table.Len() != len(oracle) {
			t.Fatalf("Len = %d, oracle %d", table.Len(), len(oracle))
		}

		// Probe every inserted prefix's base address, its broadcast end,
		// and the raw tail bytes of the input.
		probes := []addr.V4{0, 0xFFFFFFFF}
		for _, p := range recs {
			probes = append(probes, p.Addr, p.Addr|^p.Mask())
		}
		if rest := len(data) % 5; rest >= 4 {
			probes = append(probes, addr.V4(binary.BigEndian.Uint32(data[len(data)-rest:])))
		}
		for _, a := range probes {
			gotV, gotP, gotOK := table.Lookup(a)
			wantV, wantP, wantOK := 0, addr.Prefix{}, false
			for p, v := range oracle {
				if p.Contains(a) && (!wantOK || p.Len > wantP.Len) {
					wantV, wantP, wantOK = v, p, true
				}
			}
			if gotOK != wantOK {
				t.Fatalf("Lookup(%v) ok=%v, oracle %v", a, gotOK, wantOK)
			}
			if gotOK && (gotV != wantV || gotP != wantP) {
				t.Fatalf("Lookup(%v) = %d via %v, oracle %d via %v", a, gotV, gotP, wantV, wantP)
			}
			// Exact must agree with the oracle map as well.
			if gotOK {
				ev, eok := table.Exact(gotP)
				if !eok || ev != gotV {
					t.Fatalf("Exact(%v) = %d,%v after Lookup returned it", gotP, ev, eok)
				}
			}
			// Matches must enumerate exactly the containing prefixes,
			// longest first, ending at the Lookup winner's chain head.
			var chain []addr.Prefix
			table.Matches(a, func(p addr.Prefix, v int) bool {
				if ov, ok := oracle[p]; !ok || ov != v {
					t.Fatalf("Matches(%v) visited %v=%d, oracle %d (present %v)", a, p, v, ov, ok)
				}
				chain = append(chain, p)
				return true
			})
			wantChain := 0
			for p := range oracle {
				if p.Contains(a) {
					wantChain++
				}
			}
			if len(chain) != wantChain {
				t.Fatalf("Matches(%v) visited %d prefixes, oracle %d", a, len(chain), wantChain)
			}
			for i := 1; i < len(chain); i++ {
				if chain[i-1].Len <= chain[i].Len {
					t.Fatalf("Matches(%v) not longest-first: %v then %v", a, chain[i-1], chain[i])
				}
			}
			if gotOK && (len(chain) == 0 || chain[0] != gotP) {
				t.Fatalf("Matches(%v) head %v, Lookup matched %v", a, chain, gotP)
			}
		}

		// Drain: deleting every surviving route must return the trie to
		// its empty baseline — prune-on-delete means no leaked interior
		// nodes after insert+delete cycles.
		for p := range oracle {
			if !table.Delete(p) {
				t.Fatalf("drain Delete(%v) missed a live route", p)
			}
		}
		if table.Len() != 0 || table.NodeCount() != 0 {
			t.Fatalf("after drain: Len=%d NodeCount=%d, want 0,0", table.Len(), table.NodeCount())
		}
	})
}

// decodeVN splits fuzz input into canonical VN prefix records: 17-byte
// records of (hi:8, lo:8, len:1), deletion flagged like decode4.
func decodeVN(data []byte) (ins []addr.VNPrefix, del []bool) {
	for len(data) >= 17 {
		v := addr.VN{Hi: binary.BigEndian.Uint64(data[:8]), Lo: binary.BigEndian.Uint64(data[8:16])}
		l := data[16]
		ins = append(ins, addr.MakeVNPrefix(v, l%129))
		del = append(del, l&0x80 != 0)
		data = data[17:]
	}
	return ins, del
}

func FuzzTableVNLookup(f *testing.F) {
	vn := func(hi, lo uint64, l byte) []byte {
		b := make([]byte, 17)
		binary.BigEndian.PutUint64(b[:8], hi)
		binary.BigEndian.PutUint64(b[8:16], lo)
		b[16] = l
		return b
	}
	f.Add(vn(0x0000010000000000, 0, 40))
	f.Add(append(vn(0x0000010000000000, 0, 40), vn(0x0000010000000000, 0, 64)...))
	f.Add(append(vn(1<<63, 7, 128), vn(0, 0, 0)...)) // self-flagged host route + default
	f.Add(append(vn(0x0000020000000000, 0, 40), vn(0x0000020000000000, 0, 40|0x80)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, dels := decodeVN(data)
		var table TableVN[int]
		oracle := map[addr.VNPrefix]int{}
		for i, p := range recs {
			if dels[i] {
				got := table.Delete(p)
				_, want := oracle[p]
				if got != want {
					t.Fatalf("Delete(%v) = %v, oracle had-entry %v", p, got, want)
				}
				delete(oracle, p)
				continue
			}
			table.Insert(p, i)
			oracle[p] = i
		}
		if table.Len() != len(oracle) {
			t.Fatalf("Len = %d, oracle %d", table.Len(), len(oracle))
		}
		var probes []addr.VN
		for _, p := range recs {
			probes = append(probes, p.Addr)
		}
		probes = append(probes, addr.VN{}, addr.VN{Hi: ^uint64(0), Lo: ^uint64(0)})
		for _, a := range probes {
			gotV, gotP, gotOK := table.Lookup(a)
			wantV, wantP, wantOK := 0, addr.VNPrefix{}, false
			for p, v := range oracle {
				if p.Contains(a) && (!wantOK || p.Len > wantP.Len) {
					wantV, wantP, wantOK = v, p, true
				}
			}
			if gotOK != wantOK {
				t.Fatalf("Lookup(%v) ok=%v, oracle %v", a, gotOK, wantOK)
			}
			if gotOK && (gotV != wantV || gotP != wantP) {
				t.Fatalf("Lookup(%v) = %d via %v, oracle %d via %v", a, gotV, gotP, wantV, wantP)
			}
		}

		// Drain to the empty baseline: prune-on-delete must leave no
		// interior nodes behind.
		for p := range oracle {
			if !table.Delete(p) {
				t.Fatalf("drain Delete(%v) missed a live route", p)
			}
		}
		if table.Len() != 0 || table.NodeCount() != 0 {
			t.Fatalf("after drain: Len=%d NodeCount=%d, want 0,0", table.Len(), table.NodeCount())
		}
	})
}
