// Package underlay provides cached shortest-path views over a topology:
// converged-IGP distances inside each domain and ground-truth router-level
// distances over the whole internet. The event-driven protocols in
// internal/routing compute the same answers message by message; the
// experiment harness uses these closed forms for speed, and tests assert
// the two agree.
package underlay

import (
	"sync"
	"sync/atomic"

	"github.com/evolvable-net/evolve/internal/graph"
	"github.com/evolvable-net/evolve/internal/topology"
)

// domainGraph is one domain's intra topology compacted to local indices.
// Keeping per-domain subgraphs (instead of running Dijkstra over the
// global router space) makes each IGP computation and its distance
// arrays proportional to the domain size, not the internet size — the
// difference between kilobytes and gigabytes of SPT state at 10k
// domains.
type domainGraph struct {
	g   *graph.Graph
	ids []topology.RouterID       // ascending; local index i ↔ ids[i]
	idx map[topology.RouterID]int // global router id → local index
	spt *sync.Map                 // local source index → *graph.SPT (local indices)
}

// buildDomainGraph snapshots one domain's intra links. Domain router
// lists are ascending by construction, so local index order preserves
// global id order and the local Dijkstra breaks ties exactly as the old
// global-graph computation did.
func buildDomainGraph(net *topology.Network, asn topology.ASN) *domainGraph {
	ids := net.Domain(asn).Routers
	dg := &domainGraph{
		g:   graph.New(len(ids)),
		ids: ids,
		idx: make(map[topology.RouterID]int, len(ids)),
		spt: &sync.Map{},
	}
	for i, rid := range ids {
		dg.idx[rid] = i
	}
	for i, rid := range ids {
		for _, e := range net.Intra.Neighbors(int(rid)) {
			// Intra links never cross domains, so e.To is always local.
			dg.g.AddEdge(i, dg.idx[topology.RouterID(e.To)], e.Weight)
		}
	}
	return dg
}

// viewState is one immutable generation of the cache: per-domain graph
// snapshots taken at the last invalidation plus the lazily-filled SPT
// maps computed against them. Queries load one state pointer and stay on
// it, so a query mid-flight keeps a consistent view even while an
// invalidation publishes the next generation.
type viewState struct {
	domains map[topology.ASN]*domainGraph
	full    *graph.Graph
	fullSPT *sync.Map // topology.RouterID → *graph.SPT
}

// View caches single-source shortest-path trees lazily. Queries are
// lock-free and safe for concurrent use, including concurrently with
// invalidation: readers that loaded the previous state finish on its
// snapshot. The Invalidate* methods themselves must be serialized by the
// caller (internal/core holds its mutator lock across the topology
// change and the invalidation).
type View struct {
	net   *topology.Network
	state atomic.Pointer[viewState]

	// dijkstras counts Dijkstra executions across the view's lifetime —
	// the scoped-invalidation efficiency metric (fewer runs after a
	// scoped invalidation than after a full dump).
	dijkstras atomic.Uint64
}

func (v *View) freshDomains() map[topology.ASN]*domainGraph {
	out := make(map[topology.ASN]*domainGraph, len(v.net.Domains))
	for _, asn := range v.net.ASNs() {
		out[asn] = buildDomainGraph(v.net, asn)
	}
	return out
}

// NewView returns a view over net.
func NewView(net *topology.Network) *View {
	v := &View{net: net}
	v.state.Store(&viewState{
		domains: v.freshDomains(),
		full:    net.RouterGraph(),
		fullSPT: &sync.Map{},
	})
	return v
}

// Network returns the underlying topology.
func (v *View) Network() *topology.Network { return v.net }

// DijkstraRuns reports how many Dijkstra computations the view has
// performed since creation. Monotonic; scoped-invalidation tests assert
// deltas across churn.
func (v *View) DijkstraRuns() uint64 { return v.dijkstras.Load() }

// Invalidate discards every cached shortest-path tree and re-snapshots
// both graphs. Call it after a topology mutation whose scope is unknown
// or global; for single-domain or inter-only events the scoped variants
// below preserve the unaffected trees.
func (v *View) Invalidate() {
	v.state.Store(&viewState{
		domains: v.freshDomains(),
		full:    v.net.RouterGraph(),
		fullSPT: &sync.Map{},
	})
}

// InvalidateDomain discards state affected by an intra-domain change in
// asn: that domain's subgraph and SPTs, plus every full-graph SPT
// (cross-domain paths may traverse the changed domain). Every other
// domain's subgraph and cached trees are carried over untouched — the
// intra graph has no cross-domain edges — so the cost of an intra event
// is proportional to the touched domain plus a map copy, not to the
// internet.
func (v *View) InvalidateDomain(asn topology.ASN) {
	old := v.state.Load()
	domains := make(map[topology.ASN]*domainGraph, len(old.domains))
	for a, dg := range old.domains {
		domains[a] = dg
	}
	domains[asn] = buildDomainGraph(v.net, asn)
	v.state.Store(&viewState{
		domains: domains,
		full:    v.net.RouterGraph(),
		fullSPT: &sync.Map{},
	})
}

// InvalidateInter discards state affected by an inter-domain link
// change: the full-graph snapshot and its SPTs. Every intra-domain
// subgraph and SPT survives untouched — inter links do not appear in the
// intra graphs — which is the bulk of the savings under border flaps.
func (v *View) InvalidateInter() {
	old := v.state.Load()
	v.state.Store(&viewState{
		domains: old.domains,
		full:    v.net.RouterGraph(),
		fullSPT: &sync.Map{},
	})
}

// intraFor returns the SPT rooted at src within its domain's subgraph,
// along with the subgraph (needed to translate local indices).
func (v *View) intraFor(src topology.RouterID) (*domainGraph, *graph.SPT) {
	st := v.state.Load()
	dg := st.domains[v.net.DomainOf(src)]
	li := dg.idx[src]
	if t, ok := dg.spt.Load(li); ok {
		return dg, t.(*graph.SPT)
	}
	v.dijkstras.Add(1)
	t := dg.g.Dijkstra(li)
	dg.spt.Store(li, t)
	return dg, t
}

func (v *View) fullFrom(src topology.RouterID) *graph.SPT {
	st := v.state.Load()
	if t, ok := st.fullSPT.Load(src); ok {
		return t.(*graph.SPT)
	}
	v.dijkstras.Add(1)
	t := st.full.Dijkstra(int(src))
	st.fullSPT.Store(src, t)
	return t
}

// IntraDist returns the converged-IGP distance between two routers of the
// same domain, or graph.Inf if they are in different domains.
func (v *View) IntraDist(a, b topology.RouterID) int64 {
	if v.net.DomainOf(a) != v.net.DomainOf(b) {
		return graph.Inf
	}
	dg, t := v.intraFor(a)
	return t.Dist[dg.idx[b]]
}

// IntraPath returns the intra-domain router path a..b, or nil.
func (v *View) IntraPath(a, b topology.RouterID) []topology.RouterID {
	if v.net.DomainOf(a) != v.net.DomainOf(b) {
		return nil
	}
	dg, t := v.intraFor(a)
	local := t.PathTo(dg.idx[b])
	if local == nil {
		return nil
	}
	out := make([]topology.RouterID, len(local))
	for i, li := range local {
		out[i] = dg.ids[li]
	}
	return out
}

func toRouterPath(p []int) []topology.RouterID {
	if p == nil {
		return nil
	}
	out := make([]topology.RouterID, len(p))
	for i, x := range p {
		out[i] = topology.RouterID(x)
	}
	return out
}

// ClosestIn returns the member closest to entry by IGP distance (entry and
// members must share a domain); ties break to the lower router id because
// members are scanned in order. ok is false when no member is reachable.
func (v *View) ClosestIn(entry topology.RouterID, members []topology.RouterID) (topology.RouterID, int64, bool) {
	best := topology.RouterID(-1)
	bestDist := int64(graph.Inf)
	for _, m := range members {
		d := v.IntraDist(entry, m)
		if d < bestDist {
			best, bestDist = m, d
		}
	}
	if best < 0 {
		return -1, 0, false
	}
	return best, bestDist, true
}

// HotPotato implements early-exit border selection: among candidate
// border links to a neighbouring domain, return the one whose local end
// is cheapest to reach from cur by IGP (ties break toward the first
// candidate), as real intra-domain routing does. ok is false for an
// empty candidate list.
func (v *View) HotPotato(cur topology.RouterID, links []topology.InterLink) (topology.InterLink, bool) {
	if len(links) == 0 {
		return topology.InterLink{}, false
	}
	best := links[0]
	bestDist := v.IntraDist(cur, best.From)
	for _, l := range links[1:] {
		if d := v.IntraDist(cur, l.From); d < bestDist {
			best, bestDist = l, d
		}
	}
	return best, true
}

// GroundTruthDist returns the router-level shortest-path distance over the
// whole internet, ignoring routing policy. This is the unreachable-in-
// practice lower bound used in some stretch comparisons.
func (v *View) GroundTruthDist(a, b topology.RouterID) int64 {
	return v.fullFrom(a).Dist[b]
}

// GroundTruthPath returns the corresponding router path, or nil.
func (v *View) GroundTruthPath(a, b topology.RouterID) []topology.RouterID {
	return toRouterPath(v.fullFrom(a).PathTo(int(b)))
}
