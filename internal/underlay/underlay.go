// Package underlay provides cached shortest-path views over a topology:
// converged-IGP distances inside each domain and ground-truth router-level
// distances over the whole internet. The event-driven protocols in
// internal/routing compute the same answers message by message; the
// experiment harness uses these closed forms for speed, and tests assert
// the two agree.
package underlay

import (
	"sync"

	"github.com/evolvable-net/evolve/internal/graph"
	"github.com/evolvable-net/evolve/internal/topology"
)

// View caches single-source shortest-path trees lazily. Queries are safe
// for concurrent use; Invalidate must not race with queries (serialize it
// with the same write lock that guards the topology mutation).
type View struct {
	net *topology.Network

	// mu guards the cache maps and the full-graph snapshot, which queries
	// populate lazily.
	mu       sync.Mutex
	full     *graph.Graph
	intraSPT map[topology.RouterID]*graph.SPT
	fullSPT  map[topology.RouterID]*graph.SPT
}

// NewView returns a view over net.
func NewView(net *topology.Network) *View {
	return &View{
		net:      net,
		full:     net.RouterGraph(),
		intraSPT: map[topology.RouterID]*graph.SPT{},
		fullSPT:  map[topology.RouterID]*graph.SPT{},
	}
}

// Network returns the underlying topology.
func (v *View) Network() *topology.Network { return v.net }

// Invalidate discards every cached shortest-path tree and re-snapshots
// the router graph. Call it after mutating the topology (link failure or
// repair); subsequent queries reflect the new converged state.
func (v *View) Invalidate() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.full = v.net.RouterGraph()
	v.intraSPT = map[topology.RouterID]*graph.SPT{}
	v.fullSPT = map[topology.RouterID]*graph.SPT{}
}

func (v *View) intra(src topology.RouterID) *graph.SPT {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t, ok := v.intraSPT[src]; ok {
		return t
	}
	t := v.net.Intra.Dijkstra(int(src))
	v.intraSPT[src] = t
	return t
}

func (v *View) fullFrom(src topology.RouterID) *graph.SPT {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t, ok := v.fullSPT[src]; ok {
		return t
	}
	t := v.full.Dijkstra(int(src))
	v.fullSPT[src] = t
	return t
}

// IntraDist returns the converged-IGP distance between two routers of the
// same domain, or graph.Inf if they are in different domains.
func (v *View) IntraDist(a, b topology.RouterID) int64 {
	if v.net.DomainOf(a) != v.net.DomainOf(b) {
		return graph.Inf
	}
	return v.intra(a).Dist[b]
}

// IntraPath returns the intra-domain router path a..b, or nil.
func (v *View) IntraPath(a, b topology.RouterID) []topology.RouterID {
	if v.net.DomainOf(a) != v.net.DomainOf(b) {
		return nil
	}
	return toRouterPath(v.intra(a).PathTo(int(b)))
}

func toRouterPath(p []int) []topology.RouterID {
	if p == nil {
		return nil
	}
	out := make([]topology.RouterID, len(p))
	for i, x := range p {
		out[i] = topology.RouterID(x)
	}
	return out
}

// ClosestIn returns the member closest to entry by IGP distance (entry and
// members must share a domain); ties break to the lower router id because
// members are scanned in order. ok is false when no member is reachable.
func (v *View) ClosestIn(entry topology.RouterID, members []topology.RouterID) (topology.RouterID, int64, bool) {
	best := topology.RouterID(-1)
	bestDist := int64(graph.Inf)
	for _, m := range members {
		d := v.IntraDist(entry, m)
		if d < bestDist {
			best, bestDist = m, d
		}
	}
	if best < 0 {
		return -1, 0, false
	}
	return best, bestDist, true
}

// HotPotato implements early-exit border selection: among candidate
// border links to a neighbouring domain, return the one whose local end
// is cheapest to reach from cur by IGP (ties break toward the first
// candidate), as real intra-domain routing does. ok is false for an
// empty candidate list.
func (v *View) HotPotato(cur topology.RouterID, links []topology.InterLink) (topology.InterLink, bool) {
	if len(links) == 0 {
		return topology.InterLink{}, false
	}
	best := links[0]
	bestDist := v.IntraDist(cur, best.From)
	for _, l := range links[1:] {
		if d := v.IntraDist(cur, l.From); d < bestDist {
			best, bestDist = l, d
		}
	}
	return best, true
}

// GroundTruthDist returns the router-level shortest-path distance over the
// whole internet, ignoring routing policy. This is the unreachable-in-
// practice lower bound used in some stretch comparisons.
func (v *View) GroundTruthDist(a, b topology.RouterID) int64 {
	return v.fullFrom(a).Dist[b]
}

// GroundTruthPath returns the corresponding router path, or nil.
func (v *View) GroundTruthPath(a, b topology.RouterID) []topology.RouterID {
	return toRouterPath(v.fullFrom(a).PathTo(int(b)))
}
