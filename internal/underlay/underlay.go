// Package underlay provides cached shortest-path views over a topology:
// converged-IGP distances inside each domain and ground-truth router-level
// distances over the whole internet. The event-driven protocols in
// internal/routing compute the same answers message by message; the
// experiment harness uses these closed forms for speed, and tests assert
// the two agree.
package underlay

import (
	"sync"
	"sync/atomic"

	"github.com/evolvable-net/evolve/internal/graph"
	"github.com/evolvable-net/evolve/internal/topology"
)

// viewState is one immutable generation of the cache: graph snapshots
// taken at the last invalidation plus the lazily-filled SPT maps
// computed against them. Queries load one state pointer and stay on it,
// so a query mid-flight keeps a consistent view even while an
// invalidation publishes the next generation.
type viewState struct {
	intra    *graph.Graph
	full     *graph.Graph
	intraSPT *sync.Map // topology.RouterID → *graph.SPT
	fullSPT  *sync.Map // topology.RouterID → *graph.SPT
}

// View caches single-source shortest-path trees lazily. Queries are
// lock-free and safe for concurrent use, including concurrently with
// invalidation: readers that loaded the previous state finish on its
// snapshot. The Invalidate* methods themselves must be serialized by the
// caller (internal/core holds its mutator lock across the topology
// change and the invalidation).
type View struct {
	net   *topology.Network
	state atomic.Pointer[viewState]

	// dijkstras counts Dijkstra executions across the view's lifetime —
	// the scoped-invalidation efficiency metric (fewer runs after a
	// scoped invalidation than after a full dump).
	dijkstras atomic.Uint64
}

// NewView returns a view over net.
func NewView(net *topology.Network) *View {
	v := &View{net: net}
	v.state.Store(&viewState{
		intra:    net.Intra.Clone(),
		full:     net.RouterGraph(),
		intraSPT: &sync.Map{},
		fullSPT:  &sync.Map{},
	})
	return v
}

// Network returns the underlying topology.
func (v *View) Network() *topology.Network { return v.net }

// DijkstraRuns reports how many Dijkstra computations the view has
// performed since creation. Monotonic; scoped-invalidation tests assert
// deltas across churn.
func (v *View) DijkstraRuns() uint64 { return v.dijkstras.Load() }

// Invalidate discards every cached shortest-path tree and re-snapshots
// both graphs. Call it after a topology mutation whose scope is unknown
// or global; for single-domain or inter-only events the scoped variants
// below preserve the unaffected trees.
func (v *View) Invalidate() {
	v.state.Store(&viewState{
		intra:    v.net.Intra.Clone(),
		full:     v.net.RouterGraph(),
		intraSPT: &sync.Map{},
		fullSPT:  &sync.Map{},
	})
}

// InvalidateDomain discards state affected by an intra-domain change in
// asn: that domain's intra SPTs and every full-graph SPT (cross-domain
// paths may traverse the changed domain). Intra SPTs rooted in other
// domains survive — the intra graph has no cross-domain edges, so a tree
// rooted outside asn cannot touch the changed links.
func (v *View) InvalidateDomain(asn topology.ASN) {
	old := v.state.Load()
	next := &viewState{
		intra:    v.net.Intra.Clone(),
		full:     v.net.RouterGraph(),
		intraSPT: &sync.Map{},
		fullSPT:  &sync.Map{},
	}
	old.intraSPT.Range(func(k, t any) bool {
		if v.net.DomainOf(k.(topology.RouterID)) != asn {
			next.intraSPT.Store(k, t)
		}
		return true
	})
	v.state.Store(next)
}

// InvalidateInter discards state affected by an inter-domain link
// change: the full-graph snapshot and its SPTs. Every intra-domain SPT
// survives untouched — inter links do not appear in the intra graph —
// which is the bulk of the savings under border flaps.
func (v *View) InvalidateInter() {
	old := v.state.Load()
	v.state.Store(&viewState{
		intra:    old.intra,
		full:     v.net.RouterGraph(),
		intraSPT: old.intraSPT,
		fullSPT:  &sync.Map{},
	})
}

func (v *View) intra(src topology.RouterID) *graph.SPT {
	st := v.state.Load()
	if t, ok := st.intraSPT.Load(src); ok {
		return t.(*graph.SPT)
	}
	v.dijkstras.Add(1)
	t := st.intra.Dijkstra(int(src))
	st.intraSPT.Store(src, t)
	return t
}

func (v *View) fullFrom(src topology.RouterID) *graph.SPT {
	st := v.state.Load()
	if t, ok := st.fullSPT.Load(src); ok {
		return t.(*graph.SPT)
	}
	v.dijkstras.Add(1)
	t := st.full.Dijkstra(int(src))
	st.fullSPT.Store(src, t)
	return t
}

// IntraDist returns the converged-IGP distance between two routers of the
// same domain, or graph.Inf if they are in different domains.
func (v *View) IntraDist(a, b topology.RouterID) int64 {
	if v.net.DomainOf(a) != v.net.DomainOf(b) {
		return graph.Inf
	}
	return v.intra(a).Dist[b]
}

// IntraPath returns the intra-domain router path a..b, or nil.
func (v *View) IntraPath(a, b topology.RouterID) []topology.RouterID {
	if v.net.DomainOf(a) != v.net.DomainOf(b) {
		return nil
	}
	return toRouterPath(v.intra(a).PathTo(int(b)))
}

func toRouterPath(p []int) []topology.RouterID {
	if p == nil {
		return nil
	}
	out := make([]topology.RouterID, len(p))
	for i, x := range p {
		out[i] = topology.RouterID(x)
	}
	return out
}

// ClosestIn returns the member closest to entry by IGP distance (entry and
// members must share a domain); ties break to the lower router id because
// members are scanned in order. ok is false when no member is reachable.
func (v *View) ClosestIn(entry topology.RouterID, members []topology.RouterID) (topology.RouterID, int64, bool) {
	best := topology.RouterID(-1)
	bestDist := int64(graph.Inf)
	for _, m := range members {
		d := v.IntraDist(entry, m)
		if d < bestDist {
			best, bestDist = m, d
		}
	}
	if best < 0 {
		return -1, 0, false
	}
	return best, bestDist, true
}

// HotPotato implements early-exit border selection: among candidate
// border links to a neighbouring domain, return the one whose local end
// is cheapest to reach from cur by IGP (ties break toward the first
// candidate), as real intra-domain routing does. ok is false for an
// empty candidate list.
func (v *View) HotPotato(cur topology.RouterID, links []topology.InterLink) (topology.InterLink, bool) {
	if len(links) == 0 {
		return topology.InterLink{}, false
	}
	best := links[0]
	bestDist := v.IntraDist(cur, best.From)
	for _, l := range links[1:] {
		if d := v.IntraDist(cur, l.From); d < bestDist {
			best, bestDist = l, d
		}
	}
	return best, true
}

// GroundTruthDist returns the router-level shortest-path distance over the
// whole internet, ignoring routing policy. This is the unreachable-in-
// practice lower bound used in some stretch comparisons.
func (v *View) GroundTruthDist(a, b topology.RouterID) int64 {
	return v.fullFrom(a).Dist[b]
}

// GroundTruthPath returns the corresponding router path, or nil.
func (v *View) GroundTruthPath(a, b topology.RouterID) []topology.RouterID {
	return toRouterPath(v.fullFrom(a).PathTo(int(b)))
}
