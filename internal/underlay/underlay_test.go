package underlay

import (
	"testing"

	"github.com/evolvable-net/evolve/internal/graph"
	"github.com/evolvable-net/evolve/internal/topology"
)

func build(t *testing.T) (*topology.Network, []topology.RouterID, []topology.RouterID) {
	t.Helper()
	b := topology.NewBuilder()
	x := b.AddDomain("X")
	y := b.AddDomain("Y")
	xr := b.AddRouters(x, 3)
	yr := b.AddRouters(y, 2)
	b.IntraLink(xr[0], xr[1], 2)
	b.IntraLink(xr[1], xr[2], 2)
	b.IntraLink(xr[0], xr[2], 10)
	b.IntraLink(yr[0], yr[1], 3)
	b.Peer(xr[2], yr[0], 7)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n, xr, yr
}

func TestIntraDist(t *testing.T) {
	n, xr, yr := build(t)
	v := NewView(n)
	if got := v.IntraDist(xr[0], xr[2]); got != 4 {
		t.Errorf("intra dist = %d, want 4 (via middle)", got)
	}
	if got := v.IntraDist(xr[0], xr[0]); got != 0 {
		t.Errorf("self dist = %d", got)
	}
	if v.IntraDist(xr[0], yr[0]) < graph.Inf {
		t.Error("cross-domain intra dist should be Inf")
	}
}

func TestIntraPath(t *testing.T) {
	n, xr, _ := build(t)
	v := NewView(n)
	p := v.IntraPath(xr[0], xr[2])
	if len(p) != 3 || p[0] != xr[0] || p[1] != xr[1] || p[2] != xr[2] {
		t.Errorf("path = %v", p)
	}
	if v.IntraPath(xr[0], n.Domains[2].Routers[0]) != nil {
		t.Error("cross-domain path should be nil")
	}
}

func TestClosestIn(t *testing.T) {
	n, xr, _ := build(t)
	v := NewView(n)
	m, d, ok := v.ClosestIn(xr[0], []topology.RouterID{xr[1], xr[2]})
	if !ok || m != xr[1] || d != 2 {
		t.Errorf("closest = %d dist %d ok %v", m, d, ok)
	}
	// Entry itself a member → distance 0.
	m, d, ok = v.ClosestIn(xr[0], []topology.RouterID{xr[0], xr[1]})
	if !ok || m != xr[0] || d != 0 {
		t.Errorf("self member = %d dist %d ok %v", m, d, ok)
	}
	if _, _, ok := v.ClosestIn(xr[0], nil); ok {
		t.Error("no members should not resolve")
	}
}

func TestGroundTruth(t *testing.T) {
	n, xr, yr := build(t)
	v := NewView(n)
	// x0 →2→ x1 →2→ x2 →7→ y0 →3→ y1
	if got := v.GroundTruthDist(xr[0], yr[1]); got != 14 {
		t.Errorf("ground truth = %d, want 14", got)
	}
	p := v.GroundTruthPath(xr[0], yr[1])
	if len(p) != 5 || p[4] != yr[1] {
		t.Errorf("path = %v", p)
	}
}

func TestInvalidateReflectsTopologyChange(t *testing.T) {
	n, xr, yr := build(t)
	v := NewView(n)
	if got := v.IntraDist(xr[0], xr[2]); got != 4 {
		t.Fatalf("precondition dist = %d", got)
	}
	before := v.GroundTruthDist(xr[0], yr[1])
	// Cut the cheap intra path; without Invalidate the caches are stale.
	n.FailIntraLink(xr[0], xr[1])
	if got := v.IntraDist(xr[0], xr[2]); got != 4 {
		t.Fatalf("stale cache expected 4, got %d", got)
	}
	v.Invalidate()
	if got := v.IntraDist(xr[0], xr[2]); got != 10 {
		t.Errorf("post-invalidate dist = %d, want 10 (direct edge)", got)
	}
	if got := v.GroundTruthDist(xr[0], yr[1]); got <= before {
		t.Errorf("ground truth did not worsen: %d → %d", before, got)
	}
	// Restore and invalidate again.
	n.RestoreIntraLink(xr[0], xr[1], 2)
	v.Invalidate()
	if got := v.IntraDist(xr[0], xr[2]); got != 4 {
		t.Errorf("post-restore dist = %d", got)
	}
}

func TestHotPotatoTieBreak(t *testing.T) {
	n, xr, yr := build(t)
	v := NewView(n)
	links := []topology.InterLink{
		{From: xr[2], To: yr[0], Latency: 7},
		{From: xr[1], To: yr[0], Latency: 9},
	}
	// From xr[1], the second link's local end is distance 0: it wins.
	l, ok := v.HotPotato(xr[1], links)
	if !ok || l.From != xr[1] {
		t.Errorf("hot potato = %+v ok %v", l, ok)
	}
	// From xr[2], the first wins.
	l, ok = v.HotPotato(xr[2], links)
	if !ok || l.From != xr[2] {
		t.Errorf("hot potato = %+v ok %v", l, ok)
	}
	// Equidistant candidates: first in list wins (deterministic).
	l, _ = v.HotPotato(xr[0], []topology.InterLink{
		{From: xr[2], To: yr[0], Latency: 7},
		{From: xr[2], To: yr[1], Latency: 9},
	})
	if l.To != yr[0] {
		t.Error("tie did not break toward the first candidate")
	}
}

func TestGroundTruthPathEndpoints(t *testing.T) {
	n, xr, yr := build(t)
	v := NewView(n)
	p := v.GroundTruthPath(xr[0], yr[1])
	if len(p) == 0 || p[0] != xr[0] || p[len(p)-1] != yr[1] {
		t.Errorf("path = %v", p)
	}
	// Unreachable (after cutting the only inter link) yields nil.
	n.FailInterLink(xr[2], yr[0])
	v.Invalidate()
	if p := v.GroundTruthPath(xr[0], yr[1]); p != nil {
		t.Errorf("unreachable path = %v", p)
	}
}

func TestCachingConsistent(t *testing.T) {
	n, xr, _ := build(t)
	v := NewView(n)
	a := v.IntraDist(xr[0], xr[2])
	b := v.IntraDist(xr[0], xr[2])
	if a != b {
		t.Error("cached result differs")
	}
	if v.Network() != n {
		t.Error("Network accessor broken")
	}
}

func TestInvalidateDomainPreservesOtherDomains(t *testing.T) {
	n, xr, yr := build(t)
	v := NewView(n)
	// Warm an intra SPT in each domain.
	if got := v.IntraDist(xr[0], xr[2]); got != 4 {
		t.Fatalf("X warm dist = %d", got)
	}
	if got := v.IntraDist(yr[0], yr[1]); got != 3 {
		t.Fatalf("Y warm dist = %d", got)
	}
	base := v.DijkstraRuns()

	n.FailIntraLink(xr[0], xr[1])
	v.InvalidateDomain(n.DomainOf(xr[0]))

	// Y's tree survived the scoped invalidation: no recompute.
	if got := v.IntraDist(yr[0], yr[1]); got != 3 {
		t.Errorf("Y dist after X invalidation = %d", got)
	}
	if runs := v.DijkstraRuns(); runs != base {
		t.Errorf("Y lookup recomputed: %d runs, want %d", runs, base)
	}
	// X's tree was dropped and recomputes against the mutated graph.
	if got := v.IntraDist(xr[0], xr[2]); got != 10 {
		t.Errorf("X dist after invalidation = %d, want 10 (direct edge)", got)
	}
	if runs := v.DijkstraRuns(); runs != base+1 {
		t.Errorf("X lookup ran %d dijkstras, want exactly 1", runs-base)
	}
}

func TestInvalidateInterPreservesIntraTrees(t *testing.T) {
	n, xr, yr := build(t)
	v := NewView(n)
	_ = v.IntraDist(xr[0], xr[2])
	_ = v.IntraDist(yr[0], yr[1])
	before := v.GroundTruthDist(xr[0], yr[1])
	if before >= graph.Inf {
		t.Fatal("precondition: domains connected")
	}
	base := v.DijkstraRuns()

	n.FailInterLink(xr[2], yr[0])
	v.InvalidateInter()

	// Every intra tree survives an inter-only invalidation.
	if got := v.IntraDist(xr[0], xr[2]); got != 4 {
		t.Errorf("X dist = %d", got)
	}
	if got := v.IntraDist(yr[0], yr[1]); got != 3 {
		t.Errorf("Y dist = %d", got)
	}
	if runs := v.DijkstraRuns(); runs != base {
		t.Errorf("intra lookups recomputed: %d runs, want %d", runs, base)
	}
	// The full-graph trees were dropped and see the severed link.
	if got := v.GroundTruthDist(xr[0], yr[1]); got < graph.Inf {
		t.Errorf("ground truth after cut = %d, want Inf", got)
	}
	if runs := v.DijkstraRuns(); runs != base+1 {
		t.Errorf("ground-truth recompute ran %d dijkstras, want 1", v.DijkstraRuns()-base)
	}
}

// TestPerDomainMatchesGlobalDijkstra cross-checks the compact per-domain
// subgraph computation against a Dijkstra run on the global intra graph:
// distances, paths, and tie-breaks must be identical for every router
// pair of every domain.
func TestPerDomainMatchesGlobalDijkstra(t *testing.T) {
	net, err := topology.TransitStub(3, 4, 0.4, topology.GenConfig{
		Seed: 21, RoutersPerDomain: 5, HostsPerDomain: 0, Intra: topology.IntraRandom,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := NewView(net)
	for _, asn := range net.ASNs() {
		d := net.Domain(asn)
		for _, src := range d.Routers {
			spt := net.Intra.Dijkstra(int(src))
			for _, dst := range d.Routers {
				want := spt.Dist[dst]
				if got := v.IntraDist(src, dst); got != want {
					t.Fatalf("AS%d %d→%d: per-domain dist %d, global %d", asn, src, dst, got, want)
				}
				wantPath := spt.PathTo(int(dst))
				gotPath := v.IntraPath(src, dst)
				if len(gotPath) != len(wantPath) {
					t.Fatalf("AS%d %d→%d: path %v, global %v", asn, src, dst, gotPath, wantPath)
				}
				for i := range wantPath {
					if int(gotPath[i]) != wantPath[i] {
						t.Fatalf("AS%d %d→%d: path %v, global %v (tie-break drift)", asn, src, dst, gotPath, wantPath)
					}
				}
			}
		}
	}
}

// TestIntraSPTMemoryIsDomainLocal asserts the SPT arrays are sized to
// the domain, not the internet — the scaling property that makes 10k
// domains affordable.
func TestIntraSPTMemoryIsDomainLocal(t *testing.T) {
	net, err := topology.RingOfDomains(50, topology.GenConfig{Seed: 1, RoutersPerDomain: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := NewView(net)
	d := net.Domain(net.ASNs()[0])
	dg, spt := v.intraFor(d.Routers[0])
	if len(spt.Dist) != len(d.Routers) {
		t.Fatalf("SPT dist array has %d entries, want domain-local %d", len(spt.Dist), len(d.Routers))
	}
	if len(dg.ids) != len(d.Routers) {
		t.Fatalf("domain subgraph has %d ids, want %d", len(dg.ids), len(d.Routers))
	}
}
