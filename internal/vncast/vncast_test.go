package vncast

import (
	"errors"
	"testing"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/anycast"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/topology"
)

func world(t *testing.T) (*topology.Network, *core.Evolution, *Service) {
	t.Helper()
	net, err := topology.TransitStub(3, 3, 0.4, topology.GenConfig{
		Seed: 17, RoutersPerDomain: 3, HostsPerDomain: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	evo, err := core.New(net, core.Config{Option: anycast.Option1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"T0", "T1", "T2"} {
		evo.DeployDomain(net.DomainByName(name).ASN, 0)
	}
	return net, evo, New(evo)
}

func TestMulticastAddressForm(t *testing.T) {
	a := addr.MulticastVN(7)
	if !a.IsMulticast() || a.IsSelf() {
		t.Errorf("flags wrong: %s", a)
	}
	if addr.SelfAddress(1).IsMulticast() {
		t.Error("self address reported multicast")
	}
	if (addr.VN{Hi: 1}).IsMulticast() {
		t.Error("native address reported multicast")
	}
	if addr.MulticastVN(1) == addr.MulticastVN(2) {
		t.Error("groups collide")
	}
}

func TestSubscribeAndDeliver(t *testing.T) {
	net, _, svc := world(t)
	grp := svc.CreateGroup(1)
	src := net.Hosts[0]
	// Subscribe one host from every stub except the source's.
	for _, asn := range net.ASNs() {
		if net.Domain(asn).Name[0] != 'S' || asn == src.Domain {
			continue
		}
		if err := svc.Subscribe(grp, net.HostsIn(asn)[0]); err != nil {
			t.Fatal(err)
		}
	}
	if len(grp.Subscribers()) < 5 {
		t.Fatalf("subscribers = %d", len(grp.Subscribers()))
	}
	d, err := svc.Deliver(grp, src, []byte("stream"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Subscribers != len(grp.Subscribers()) {
		t.Errorf("delivered to %d", d.Subscribers)
	}
	if d.TotalCost <= 0 || d.UnicastCost <= 0 {
		t.Errorf("costs: %+v", d)
	}
	// The multicast argument: the tree never costs more than repeated
	// unicast, and with many subscribers it should cost strictly less.
	if d.TotalCost > d.UnicastCost {
		t.Errorf("multicast (%d) beat by unicast (%d)", d.TotalCost, d.UnicastCost)
	}
	if d.Saving <= 0 {
		t.Errorf("no saving with %d subscribers: %+v", d.Subscribers, d)
	}
}

func TestSavingGrowsWithGroupSize(t *testing.T) {
	net, _, svc := world(t)
	src := net.Hosts[0]
	var candidates []*topology.Host
	for _, h := range net.Hosts {
		if h.Domain != src.Domain {
			candidates = append(candidates, h)
		}
	}
	small := svc.CreateGroup(10)
	for _, h := range candidates[:2] {
		if err := svc.Subscribe(small, h); err != nil {
			t.Fatal(err)
		}
	}
	large := svc.CreateGroup(11)
	for _, h := range candidates {
		if err := svc.Subscribe(large, h); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := svc.Deliver(small, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := svc.Deliver(large, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The robust amortization claim: the *shared* component (ingress +
	// tree) per subscriber falls as the group grows — tails are paid per
	// subscriber under any scheme and don't amortize.
	perSmall := float64(ds.IngressCost+ds.TreeCost) / float64(ds.Subscribers)
	perLarge := float64(dl.IngressCost+dl.TreeCost) / float64(dl.Subscribers)
	if perLarge >= perSmall {
		t.Errorf("shared cost did not amortize: %.1f (n=%d) → %.1f (n=%d)",
			perSmall, ds.Subscribers, perLarge, dl.Subscribers)
	}
	if dl.Saving <= 0.2 {
		t.Errorf("large-group saving only %.3f", dl.Saving)
	}
}

func TestUniversalAccessForSubscribers(t *testing.T) {
	// Subscribers in NON-deploying stubs join anyway: the group
	// capability inherits universal access.
	net, _, svc := world(t)
	grp := svc.CreateGroup(2)
	for _, asn := range net.ASNs() {
		if net.Domain(asn).Name[0] != 'S' {
			continue
		}
		for _, h := range net.HostsIn(asn) {
			if err := svc.Subscribe(grp, h); err != nil {
				t.Fatalf("stub host %s could not subscribe: %v", h.Name, err)
			}
		}
	}
	src := net.HostsIn(net.DomainByName("T0").ASN)[0]
	d, err := svc.Deliver(grp, src, []byte("everyone"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Subscribers != 18 {
		t.Errorf("subscribers = %d, want all 18 stub hosts", d.Subscribers)
	}
}

func TestUnsubscribeAndErrors(t *testing.T) {
	net, _, svc := world(t)
	grp := svc.CreateGroup(3)
	h := net.Hosts[1]
	if err := svc.Subscribe(grp, h); err != nil {
		t.Fatal(err)
	}
	svc.Unsubscribe(grp, h)
	if _, err := svc.Deliver(grp, net.Hosts[0], nil); !errors.Is(err, ErrEmptyGroup) {
		t.Errorf("err = %v", err)
	}
	bad := &Group{Addr: addr.VN{Hi: 1}, subs: map[topology.HostID]subscription{}}
	if err := svc.Subscribe(bad, h); !errors.Is(err, ErrNotMulticast) {
		t.Errorf("err = %v", err)
	}
	// CreateGroup is idempotent.
	if svc.CreateGroup(3) != grp {
		t.Error("CreateGroup not idempotent")
	}
}

func TestResubscribeAfterDeploymentChange(t *testing.T) {
	net, evo, svc := world(t)
	grp := svc.CreateGroup(4)
	stub := net.DomainByName("S2.2")
	h := net.HostsIn(stub.ASN)[0]
	if err := svc.Subscribe(grp, h); err != nil {
		t.Fatal(err)
	}
	before := grp.subs[h.ID].egress
	// The subscriber's own stub deploys; on refresh its egress moves home.
	evo.DeployDomain(stub.ASN, 0)
	if err := svc.Resubscribe(grp); err != nil {
		t.Fatal(err)
	}
	after := grp.subs[h.ID].egress
	if net.DomainOf(after) != stub.ASN {
		t.Errorf("egress stayed at %d after home deployment", after)
	}
	if before == after {
		t.Error("egress did not move")
	}
	// Delivery still works.
	if _, err := svc.Deliver(grp, net.Hosts[0], nil); err != nil {
		t.Fatal(err)
	}
}
