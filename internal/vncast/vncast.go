// Package vncast is the payoff demonstration: the capability whose failed
// deployment motivates the whole paper — multicast — delivered as a
// feature of the *new* IP generation, running over the vN-Bone. §2.1's
// cautionary tale is that IP Multicast died for lack of universal access;
// here IPv8-multicast inherits universal access from the anycast
// redirection beneath it: any host can subscribe, no matter what its ISP
// deploys.
//
// The design is deliberately simple (source-rooted shortest-path trees
// over the virtual topology, subscriber state at egress members), because
// the point is architectural: once the vN-Bone exists, the group
// capability is an IPvN-layer feature ISPs deploy like any other — and
// the measured payoff (tree cost vs repeated unicast) is exactly the
// bandwidth argument multicast always made.
package vncast

import (
	"errors"
	"fmt"
	"sort"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/core"
	"github.com/evolvable-net/evolve/internal/topology"
)

// Errors.
var (
	// ErrEmptyGroup: delivering to a group with no subscribers.
	ErrEmptyGroup = errors.New("vncast: group has no subscribers")
	// ErrNotMulticast: the address is not an IPvN group address.
	ErrNotMulticast = errors.New("vncast: not a multicast IPvN address")
)

// subscription pins one host to its egress member (the IPvN router,
// found via anycast, that delivers the group's traffic to it).
type subscription struct {
	host   *topology.Host
	egress topology.RouterID
	// tailCost is the underlay cost from the egress to the host.
	tailCost int64
}

// Group is one IPvN multicast group.
type Group struct {
	Addr addr.VN
	subs map[topology.HostID]subscription
}

// Subscribers returns the member hosts in id order.
func (g *Group) Subscribers() []*topology.Host {
	out := make([]*topology.Host, 0, len(g.subs))
	for _, s := range g.subs {
		out = append(out, s.host)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Service manages groups over one Evolution.
type Service struct {
	evo    *core.Evolution
	groups map[addr.VN]*Group
}

// New creates the multicast layer of an IPvN deployment.
func New(evo *core.Evolution) *Service {
	return &Service{evo: evo, groups: map[addr.VN]*Group{}}
}

// CreateGroup allocates (or returns) the group numbered g.
func (s *Service) CreateGroup(g uint32) *Group {
	a := addr.MulticastVN(g)
	if grp, ok := s.groups[a]; ok {
		return grp
	}
	grp := &Group{Addr: a, subs: map[topology.HostID]subscription{}}
	s.groups[a] = grp
	return grp
}

// Subscribe joins a host to the group. Universal access applies: the
// host's join rides anycast to the closest IPvN router, which becomes its
// egress; no support from the host's own ISP is needed.
func (s *Service) Subscribe(grp *Group, h *topology.Host) error {
	if !grp.Addr.IsMulticast() {
		return ErrNotMulticast
	}
	res, err := s.evo.Anycast.ResolveFromHost(h, s.evo.AnycastAddr())
	if err != nil {
		return fmt.Errorf("vncast: subscribe %s: %w", h.Name, err)
	}
	grp.subs[h.ID] = subscription{host: h, egress: res.Member, tailCost: res.Cost}
	return nil
}

// Unsubscribe removes a host from the group.
func (s *Service) Unsubscribe(grp *Group, h *topology.Host) {
	delete(grp.subs, h.ID)
}

// Resubscribe refreshes every subscription against the current deployment
// (hosts periodically re-join, exactly like the §3.3.2 endhost refresh).
func (s *Service) Resubscribe(grp *Group) error {
	for _, sub := range grp.subs {
		if err := s.Subscribe(grp, sub.host); err != nil {
			return err
		}
	}
	return nil
}

// Delivery accounts one multicast transmission.
type Delivery struct {
	// Subscribers reached.
	Subscribers int
	// IngressCost is the source's anycast leg.
	IngressCost int64
	// TreeLinks is the number of distinct vN-Bone links in the
	// distribution tree; TreeCost their summed cost (each link carries
	// the packet once — that is the whole point).
	TreeLinks int
	TreeCost  int64
	// TailCost sums the egress→subscriber legs.
	TailCost int64
	// TotalCost is the multicast delivery's full underlay cost.
	TotalCost int64
	// UnicastCost is what reaching every subscriber with separate IPvN
	// unicast sends would have cost.
	UnicastCost int64
	// Saving is 1 − TotalCost/UnicastCost.
	Saving float64
}

// Tree is a group's source-rooted distribution state: for every on-tree
// member, its downstream branch members and its leaf subscribers. This is
// exactly the replication state a live vN router installs.
type Tree struct {
	Ingress  topology.RouterID
	Branches map[topology.RouterID][]topology.RouterID
	Leaves   map[topology.RouterID][]*topology.Host
	// Links counts distinct tree edges; Cost their summed bone cost;
	// TailCost the summed egress→subscriber legs; IngressCost the
	// source's anycast leg.
	Links                       int
	Cost, TailCost, IngressCost int64
}

// BuildTree computes the source-rooted shortest-path tree over the
// vN-Bone for grp's current subscribers.
func (s *Service) BuildTree(grp *Group, src *topology.Host) (*Tree, error) {
	if len(grp.subs) == 0 {
		return nil, ErrEmptyGroup
	}
	bone, err := s.evo.Bone()
	if err != nil {
		return nil, err
	}
	ing, err := s.evo.Anycast.ResolveFromHost(src, s.evo.AnycastAddr())
	if err != nil {
		return nil, fmt.Errorf("vncast: ingress: %w", err)
	}
	t := &Tree{
		Ingress:     ing.Member,
		Branches:    map[topology.RouterID][]topology.RouterID{},
		Leaves:      map[topology.RouterID][]*topology.Host{},
		IngressCost: ing.Cost,
	}
	type edge struct{ a, b topology.RouterID }
	seen := map[edge]bool{}
	hostIDs := make([]topology.HostID, 0, len(grp.subs))
	for id := range grp.subs {
		hostIDs = append(hostIDs, id)
	}
	sort.Slice(hostIDs, func(i, j int) bool { return hostIDs[i] < hostIDs[j] })
	for _, id := range hostIDs {
		sub := grp.subs[id]
		path := bone.Path(ing.Member, sub.egress)
		if path == nil {
			return nil, fmt.Errorf("vncast: egress %d unreachable on bone", sub.egress)
		}
		for i := 0; i+1 < len(path); i++ {
			e := edge{path[i], path[i+1]}
			if seen[e] {
				continue
			}
			seen[e] = true
			t.Branches[path[i]] = append(t.Branches[path[i]], path[i+1])
			t.Links++
			t.Cost += bone.Dist(path[i], path[i+1])
		}
		t.Leaves[sub.egress] = append(t.Leaves[sub.egress], sub.host)
		t.TailCost += sub.tailCost
	}
	return t, nil
}

// Deliver sends payload from src to every subscriber of grp, building a
// source-rooted shortest-path tree over the vN-Bone, and returns the cost
// accounting against repeated unicast.
func (s *Service) Deliver(grp *Group, src *topology.Host, payload []byte) (Delivery, error) {
	tree, err := s.BuildTree(grp, src)
	if err != nil {
		return Delivery{}, err
	}
	d := Delivery{
		Subscribers: len(grp.subs),
		IngressCost: tree.IngressCost,
		TreeLinks:   tree.Links,
		TreeCost:    tree.Cost,
		TailCost:    tree.TailCost,
	}
	d.TotalCost = d.IngressCost + d.TreeCost + d.TailCost
	hostIDs := make([]topology.HostID, 0, len(grp.subs))
	for id := range grp.subs {
		hostIDs = append(hostIDs, id)
	}
	sort.Slice(hostIDs, func(i, j int) bool { return hostIDs[i] < hostIDs[j] })

	// Baseline: one IPvN unicast per subscriber (each pays the full
	// ingress + bone + tail path).
	for _, id := range hostIDs {
		sub := grp.subs[id]
		ud, err := s.evo.Send(src, sub.host, payload)
		if err != nil {
			return Delivery{}, fmt.Errorf("vncast: unicast baseline to %s: %w", sub.host.Name, err)
		}
		d.UnicastCost += ud.TotalCost
	}
	if d.UnicastCost > 0 {
		d.Saving = 1 - float64(d.TotalCost)/float64(d.UnicastCost)
	}
	return d, nil
}
