// Package tunnel manages IPvN-in-IPv(N-1) tunnels: the encapsulation an
// endhost uses to reach the anycast-addressed IPvN ingress, and the
// configured tunnels that stitch vN-Bone routers together across
// non-participating infrastructure (§3.3, §3.4). It operates at the wire
// level on the formats of internal/packet.
package tunnel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/packet"
	"github.com/evolvable-net/evolve/internal/trace"
)

// Errors.
var (
	// ErrNotForUs is returned when decapsulating a packet whose outer
	// destination is not the local endpoint.
	ErrNotForUs = errors.New("tunnel: outer destination is not local")
	// ErrHopLimit is returned when the inner hop limit expires.
	ErrHopLimit = errors.New("tunnel: inner hop limit exceeded")
	// ErrNoTunnel is returned when sending to an unconfigured remote.
	ErrNoTunnel = errors.New("tunnel: no tunnel to remote")
)

// Tunnel is one configured point-to-point tunnel.
type Tunnel struct {
	// Name is a human label ("Q-to-D").
	Name string
	// Local and Remote are the underlay endpoints.
	Local, Remote addr.V4
	// TTL is the outer packet's hop limit (0 = default).
	TTL uint8
}

// Stats counts per-endpoint tunnel activity.
type Stats struct {
	Encapsulated uint64
	Decapsulated uint64
	Rejected     uint64
}

// Endpoint is the tunnel machinery of one node (host or IPvN router).
type Endpoint struct {
	// Local is the node's underlay address.
	Local addr.V4

	tunnels map[addr.V4]*Tunnel
	stats   Stats
	buf     *packet.SerializeBuffer

	// Observability hooks, set by Observe. Both are optional and nil by
	// default; the encap/decap hot path only pays a nil check then.
	tracer   trace.Tracer
	counters *trace.Counters
	seq      uint32
}

// Observe attaches observability to the endpoint: every encap/decap is
// counted in c and, when tr is non-nil, emitted as a span event stamped
// with the delivery sequence number seq. Either argument may be nil.
func (e *Endpoint) Observe(tr trace.Tracer, c *trace.Counters, seq uint32) {
	e.tracer = tr
	e.counters = c
	e.seq = seq
}

// NewEndpoint returns the tunnel endpoint for a node.
func NewEndpoint(local addr.V4) *Endpoint {
	return &Endpoint{
		Local:   local,
		tunnels: map[addr.V4]*Tunnel{},
		buf:     packet.NewSerializeBuffer(),
	}
}

// Add configures a tunnel to remote, replacing any existing one.
func (e *Endpoint) Add(name string, remote addr.V4, ttl uint8) *Tunnel {
	t := &Tunnel{Name: name, Local: e.Local, Remote: remote, TTL: ttl}
	e.tunnels[remote] = t
	return t
}

// Remove tears down the tunnel to remote; it reports whether one existed.
func (e *Endpoint) Remove(remote addr.V4) bool {
	if _, ok := e.tunnels[remote]; !ok {
		return false
	}
	delete(e.tunnels, remote)
	return true
}

// Lookup returns the tunnel to remote.
func (e *Endpoint) Lookup(remote addr.V4) (*Tunnel, bool) {
	t, ok := e.tunnels[remote]
	return t, ok
}

// List returns the configured tunnels sorted by remote address.
func (e *Endpoint) List() []*Tunnel {
	out := make([]*Tunnel, 0, len(e.tunnels))
	for _, t := range e.tunnels {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Remote < out[j].Remote })
	return out
}

// Stats returns a copy of the endpoint's counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Encap wraps an IPvN packet for transmission through the tunnel to
// remote. The inner hop limit is decremented (the tunnel transit is one
// IPvN hop); ErrHopLimit is returned when it expires.
func (e *Endpoint) Encap(remote addr.V4, inner packet.VNHeader, payload []byte) ([]byte, error) {
	t, ok := e.tunnels[remote]
	if !ok {
		return nil, ErrNoTunnel
	}
	return e.encap(t.Remote, t.TTL, inner, payload)
}

// EncapTo wraps an IPvN packet toward an arbitrary underlay destination
// without a configured tunnel — the endhost's "encapsulate toward the
// anycast address" operation (§3.1), where no provisioning exists by
// design.
func (e *Endpoint) EncapTo(outerDst addr.V4, inner packet.VNHeader, payload []byte) ([]byte, error) {
	return e.encap(outerDst, 0, inner, payload)
}

func (e *Endpoint) encap(outerDst addr.V4, ttl uint8, inner packet.VNHeader, payload []byte) ([]byte, error) {
	if inner.HopLimit == 0 {
		inner.HopLimit = packet.DefaultHopLimit
	}
	if inner.HopLimit <= 1 {
		e.stats.Rejected++
		return nil, ErrHopLimit
	}
	inner.HopLimit--
	outer := packet.V4Header{
		Proto: packet.ProtoVNEncap,
		TTL:   ttl,
		Src:   e.Local,
		Dst:   outerDst,
	}
	if err := packet.Serialize(e.buf, payload, &outer, &inner); err != nil {
		e.stats.Rejected++
		return nil, err
	}
	e.stats.Encapsulated++
	if e.counters != nil {
		e.counters.Encap()
	}
	if e.tracer != nil {
		e.tracer.Event(trace.Event{
			Kind: trace.KindEncap, Seq: e.seq, Router: -1,
			Src: e.Local, Dst: outerDst,
		})
	}
	return append([]byte(nil), e.buf.Bytes()...), nil
}

// EncapToShared is the zero-copy form of EncapTo: the returned wire bytes
// alias the endpoint's internal serialize buffer and are valid only until
// the endpoint's next encapsulation. Callers that hand the bytes to
// another endpoint's Decap before re-encapsulating (the ping-pong pattern
// of a relay loop) never need the copy.
func (e *Endpoint) EncapToShared(outerDst addr.V4, inner packet.VNHeader, payload []byte) ([]byte, error) {
	if inner.HopLimit == 0 {
		inner.HopLimit = packet.DefaultHopLimit
	}
	if inner.HopLimit <= 1 {
		e.stats.Rejected++
		return nil, ErrHopLimit
	}
	inner.HopLimit--
	outer := packet.V4Header{
		Proto: packet.ProtoVNEncap,
		TTL:   0,
		Src:   e.Local,
		Dst:   outerDst,
	}
	if err := packet.SerializeVN(e.buf, payload, &outer, &inner); err != nil {
		e.stats.Rejected++
		return nil, err
	}
	e.stats.Encapsulated++
	if e.counters != nil {
		e.counters.Encap()
	}
	if e.tracer != nil {
		e.tracer.Event(trace.Event{
			Kind: trace.KindEncap, Seq: e.seq, Router: -1,
			Src: e.Local, Dst: outerDst,
		})
	}
	return e.buf.Bytes(), nil
}

// PatchEncap re-encapsulates a serialized vn-encap packet in place for
// its next tunnel leg, the batched form of EncapToShared: instead of
// re-serializing both headers around the payload, it decrements the
// inner hop limit and rewrites the outer addresses/TTL/checksum directly
// in the wire bytes. The result is byte-identical to decapsulating and
// re-encapsulating through the serializers, and the encap is counted and
// traced exactly as EncapToShared would.
func (e *Endpoint) PatchEncap(wire []byte, outerDst addr.V4) error {
	if len(wire) < packet.V4HeaderLen+packet.VNHeaderLen {
		e.stats.Rejected++
		return packet.ErrTruncated
	}
	hop := &wire[packet.V4HeaderLen+1]
	if *hop == 0 {
		*hop = packet.DefaultHopLimit
	}
	if *hop <= 1 {
		e.stats.Rejected++
		return ErrHopLimit
	}
	*hop--
	packet.RewriteOuter(wire, e.Local, outerDst)
	e.stats.Encapsulated++
	if e.counters != nil {
		e.counters.Encap()
	}
	if e.tracer != nil {
		e.tracer.Event(trace.Event{
			Kind: trace.KindEncap, Seq: e.seq, Router: -1,
			Src: e.Local, Dst: outerDst,
		})
	}
	return nil
}

// ForwardShared performs one complete relay hop in place: the packet is
// re-encapsulated toward next (PatchEncap) and its arrival there is
// accounted as a decapsulation, after which the endpoint itself stands
// at next (Local advances). One ForwardShared is observationally
// identical — counters, stats and span events — to the ping-pong
// EncapToShared/DecapShared pair the loop send path runs per bone hop;
// the wire bytes are valid by construction, so no re-parse is needed.
func (e *Endpoint) ForwardShared(wire []byte, next addr.V4) error {
	from := e.Local
	if err := e.PatchEncap(wire, next); err != nil {
		return err
	}
	e.Local = next
	e.stats.Decapsulated++
	if e.counters != nil {
		e.counters.Decap()
	}
	if e.tracer != nil {
		e.tracer.Event(trace.Event{
			Kind: trace.KindDecap, Seq: e.seq, Router: -1,
			Src: from, Dst: next,
		})
	}
	return nil
}

// Decap unwraps a tunnelled packet addressed to this endpoint, returning
// the outer source, the inner IPvN header and the innermost payload.
func (e *Endpoint) Decap(wire []byte) (from addr.V4, inner packet.VNHeader, payload []byte, err error) {
	outer, vn, pl, err := packet.DecapVN(wire)
	if err != nil {
		e.stats.Rejected++
		return 0, packet.VNHeader{}, nil, err
	}
	if outer.Dst != e.Local {
		e.stats.Rejected++
		return 0, packet.VNHeader{}, nil, fmt.Errorf("%w: %s", ErrNotForUs, outer.Dst)
	}
	e.stats.Decapsulated++
	if e.counters != nil {
		e.counters.Decap()
	}
	if e.tracer != nil {
		e.tracer.Event(trace.Event{
			Kind: trace.KindDecap, Seq: e.seq, Router: -1,
			Src: outer.Src, Dst: e.Local,
		})
	}
	return outer.Src, vn, pl, nil
}

// DecapShared is the zero-copy form of Decap: the inner header's option
// values and the payload alias wire, and the Options slice appends to
// scratch (pass a reused scratch[:0]). See packet.DecodeVNShared for the
// aliasing contract.
func (e *Endpoint) DecapShared(wire []byte, scratch []packet.Option) (from addr.V4, inner packet.VNHeader, payload []byte, err error) {
	outer, vn, pl, err := packet.DecapVNShared(wire, scratch)
	if err != nil {
		e.stats.Rejected++
		return 0, packet.VNHeader{}, nil, err
	}
	if outer.Dst != e.Local {
		e.stats.Rejected++
		return 0, packet.VNHeader{}, nil, fmt.Errorf("%w: %s", ErrNotForUs, outer.Dst)
	}
	e.stats.Decapsulated++
	if e.counters != nil {
		e.counters.Decap()
	}
	if e.tracer != nil {
		e.tracer.Event(trace.Event{
			Kind: trace.KindDecap, Seq: e.seq, Router: -1,
			Src: outer.Src, Dst: e.Local,
		})
	}
	return outer.Src, vn, pl, nil
}

// Relay re-encapsulates a just-decapsulated packet into the tunnel toward
// next — the per-hop operation of a vN-Bone transit router.
func (e *Endpoint) Relay(next addr.V4, inner packet.VNHeader, payload []byte) ([]byte, error) {
	return e.Encap(next, inner, payload)
}

// ProbeNonceLen is the keepalive payload size: one big-endian nonce.
const ProbeNonceLen = 8

// EncodeProbe builds the liveness keepalive exchanged between live
// overlay peers: a bare underlay packet (ProtoProbe, or ProtoProbeAck
// when ack is set) whose payload is the 8-byte nonce the ack echoes.
// Probes ride outside the vN-encap tunnel on purpose — they measure the
// underlay link to a peer, not an IPvN path.
func EncodeProbe(src, dst addr.V4, nonce uint64, ack bool) ([]byte, error) {
	proto := packet.ProtoProbe
	if ack {
		proto = packet.ProtoProbeAck
	}
	var payload [ProbeNonceLen]byte
	binary.BigEndian.PutUint64(payload[:], nonce)
	outer := packet.V4Header{Proto: proto, Src: src, Dst: dst}
	b := packet.NewSerializeBuffer()
	if err := packet.Serialize(b, payload[:], &outer); err != nil {
		return nil, err
	}
	return append([]byte(nil), b.Bytes()...), nil
}

// DecodeProbe parses a keepalive built by EncodeProbe, reporting whether
// it is the ack leg. Non-probe protocols are an error.
func DecodeProbe(wire []byte) (outer packet.V4Header, nonce uint64, ack bool, err error) {
	outer, payload, err := packet.DecodeV4(wire)
	if err != nil {
		return packet.V4Header{}, 0, false, err
	}
	switch outer.Proto {
	case packet.ProtoProbe:
	case packet.ProtoProbeAck:
		ack = true
	default:
		return packet.V4Header{}, 0, false, fmt.Errorf("tunnel: protocol %s is not a probe", outer.Proto)
	}
	if len(payload) < ProbeNonceLen {
		return packet.V4Header{}, 0, false, fmt.Errorf("tunnel: probe payload %d bytes, want %d", len(payload), ProbeNonceLen)
	}
	return outer, binary.BigEndian.Uint64(payload[:ProbeNonceLen]), ack, nil
}
