package tunnel

import (
	"bytes"
	"errors"
	"testing"

	"github.com/evolvable-net/evolve/internal/addr"
	"github.com/evolvable-net/evolve/internal/packet"
)

var (
	locA = addr.MustParseV4("10.0.0.1")
	locB = addr.MustParseV4("20.0.0.1")
	locC = addr.MustParseV4("30.0.0.1")
)

func vnHeader() packet.VNHeader {
	return packet.VNHeader{
		Version:  8,
		HopLimit: 10,
		Src:      addr.SelfAddress(locA),
		Dst:      addr.VN{Hi: 7, Lo: 9},
	}
}

func TestEncapDecapAcrossTunnel(t *testing.T) {
	a := NewEndpoint(locA)
	b := NewEndpoint(locB)
	a.Add("a-b", locB, 0)

	wire, err := a.Encap(locB, vnHeader(), []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	from, inner, payload, err := b.Decap(wire)
	if err != nil {
		t.Fatal(err)
	}
	if from != locA {
		t.Errorf("from = %s", from)
	}
	if inner.HopLimit != 9 {
		t.Errorf("hop limit = %d, want decremented 9", inner.HopLimit)
	}
	if !bytes.Equal(payload, []byte("data")) {
		t.Errorf("payload = %q", payload)
	}
	if a.Stats().Encapsulated != 1 || b.Stats().Decapsulated != 1 {
		t.Errorf("stats: %+v %+v", a.Stats(), b.Stats())
	}
}

func TestEncapWithoutTunnelFails(t *testing.T) {
	a := NewEndpoint(locA)
	if _, err := a.Encap(locB, vnHeader(), nil); !errors.Is(err, ErrNoTunnel) {
		t.Errorf("err = %v", err)
	}
}

func TestEncapToAnycastNeedsNoTunnel(t *testing.T) {
	a := NewEndpoint(locA)
	any, _ := addr.Option1Address(0)
	wire, err := a.EncapTo(any, vnHeader(), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	outer, _, err := packet.DecodeV4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Dst != any || outer.Src != locA || outer.Proto != packet.ProtoVNEncap {
		t.Errorf("outer = %+v", outer)
	}
}

func TestDecapRejectsForeignDestination(t *testing.T) {
	a := NewEndpoint(locA)
	c := NewEndpoint(locC)
	a.Add("a-b", locB, 0)
	wire, err := a.Encap(locB, vnHeader(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Decap(wire); !errors.Is(err, ErrNotForUs) {
		t.Errorf("err = %v", err)
	}
	if c.Stats().Rejected != 1 {
		t.Errorf("rejected = %d", c.Stats().Rejected)
	}
}

func TestDecapRejectsGarbage(t *testing.T) {
	a := NewEndpoint(locA)
	if _, _, _, err := a.Decap([]byte{1, 2, 3}); err == nil {
		t.Error("garbage decapped")
	}
}

func TestHopLimitExpiresAcrossRelays(t *testing.T) {
	// A three-node chain; hop limit 3 permits exactly two tunnel transits
	// (decremented on each encap): A→B ok, B→C ok, C→… fails.
	a := NewEndpoint(locA)
	b := NewEndpoint(locB)
	c := NewEndpoint(locC)
	a.Add("", locB, 0)
	b.Add("", locC, 0)
	c.Add("", locA, 0)

	h := vnHeader()
	h.HopLimit = 3
	wire, err := a.Encap(locB, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, inner, payload, err := b.Decap(wire)
	if err != nil {
		t.Fatal(err)
	}
	wire, err = b.Relay(locC, inner, payload)
	if err != nil {
		t.Fatal(err)
	}
	_, inner, payload, err = c.Decap(wire)
	if err != nil {
		t.Fatal(err)
	}
	if inner.HopLimit != 1 {
		t.Fatalf("hop limit = %d", inner.HopLimit)
	}
	if _, err := c.Relay(locA, inner, payload); !errors.Is(err, ErrHopLimit) {
		t.Errorf("err = %v, want ErrHopLimit", err)
	}
}

func TestTableOperations(t *testing.T) {
	a := NewEndpoint(locA)
	a.Add("to-b", locB, 32)
	a.Add("to-c", locC, 0)
	if got := a.List(); len(got) != 2 || got[0].Remote != locB || got[1].Remote != locC {
		t.Errorf("List = %v", got)
	}
	tn, ok := a.Lookup(locB)
	if !ok || tn.Name != "to-b" || tn.TTL != 32 {
		t.Errorf("Lookup = %+v ok %v", tn, ok)
	}
	if !a.Remove(locB) || a.Remove(locB) {
		t.Error("Remove semantics wrong")
	}
	if _, ok := a.Lookup(locB); ok {
		t.Error("removed tunnel still present")
	}
	// Replacing a tunnel keeps one entry.
	a.Add("to-c2", locC, 0)
	if len(a.List()) != 1 {
		t.Error("replacement duplicated tunnel")
	}
}

func TestUnderlayDstOptionSurvivesTunnel(t *testing.T) {
	a := NewEndpoint(locA)
	b := NewEndpoint(locB)
	a.Add("", locB, 0)
	h := vnHeader().WithUnderlayDst(locC)
	wire, err := a.Encap(locB, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, inner, _, err := b.Decap(wire)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := inner.UnderlayDst()
	if !ok || u != locC {
		t.Errorf("UnderlayDst = %s ok %v", u, ok)
	}
}

func BenchmarkEncapDecapRelay(b *testing.B) {
	a := NewEndpoint(locA)
	m := NewEndpoint(locB)
	a.Add("", locB, 0)
	m.Add("", locC, 0)
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire, err := a.Encap(locB, vnHeader(), payload)
		if err != nil {
			b.Fatal(err)
		}
		_, inner, pl, err := m.Decap(wire)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Relay(locC, inner, pl); err != nil {
			b.Fatal(err)
		}
	}
}

func TestProbeRoundTrip(t *testing.T) {
	src, dst := addr.V4FromOctets(10, 0, 0, 1), addr.V4FromOctets(10, 0, 0, 2)
	for _, ack := range []bool{false, true} {
		wire, err := EncodeProbe(src, dst, 0xDEADBEEFCAFE, ack)
		if err != nil {
			t.Fatal(err)
		}
		outer, nonce, gotAck, err := DecodeProbe(wire)
		if err != nil {
			t.Fatal(err)
		}
		if outer.Src != src || outer.Dst != dst {
			t.Errorf("ack=%v addresses %s → %s", ack, outer.Src, outer.Dst)
		}
		if nonce != 0xDEADBEEFCAFE {
			t.Errorf("ack=%v nonce = %#x", ack, nonce)
		}
		if gotAck != ack {
			t.Errorf("ack leg = %v, want %v", gotAck, ack)
		}
		wantProto := packet.ProtoProbe
		if ack {
			wantProto = packet.ProtoProbeAck
		}
		if outer.Proto != wantProto {
			t.Errorf("proto = %s", outer.Proto)
		}
	}
}

func TestDecodeProbeRejectsNonProbe(t *testing.T) {
	ep := NewEndpoint(addr.V4FromOctets(10, 0, 0, 1))
	wire, err := ep.EncapTo(addr.V4FromOctets(10, 0, 0, 2), packet.VNHeader{Version: 8}, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecodeProbe(wire); err == nil {
		t.Error("vn-encap packet decoded as probe")
	}
	short, err := EncodeProbe(addr.V4FromOctets(10, 0, 0, 1), addr.V4FromOctets(10, 0, 0, 2), 1, false)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the nonce: total-length check in DecodeV4 rejects the lie,
	// so rewrite the length too — the probe decoder must still refuse.
	short = short[:len(short)-4]
	if _, _, _, err := DecodeProbe(short); err == nil {
		t.Error("truncated probe accepted")
	}
}
