package addr

import (
	"strings"
	"testing"
)

// Fuzz targets: the address parsers must never panic on arbitrary
// strings, and anything they accept must round-trip — format the parsed
// value and parse it again, landing on the identical value. Round-trip
// is on the *value*, not the input string: both grammars admit
// non-canonical spellings (leading zeros, short hex groups) that
// formatting canonicalizes.

func FuzzParseV4(f *testing.F) {
	for _, s := range []string{
		"0.0.0.0", "255.255.255.255", "10.0.0.1", "1.2.3.4",
		"256.1.1.1", "1.2.3", "1.2.3.4.5", "a.b.c.d", "", "....",
		"01.02.03.04", " 1.2.3.4", "1.2.3.4 ",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseV4(s)
		if err != nil {
			return
		}
		back, err := ParseV4(a.String())
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q rejected: %v", a.String(), s, err)
		}
		if back != a {
			t.Fatalf("round trip diverged: %q → %v → %q → %v", s, a, a.String(), back)
		}
	})
}

func FuzzParseVN(f *testing.F) {
	for _, s := range []string{
		"self:10.0.0.1", "self:0.0.0.0", "self:255.255.255.255",
		"0:0:0:0", "ffff:ffff:ffff:ffff", "1:2:3:4", "dead:beef:0:1",
		"0000000000000001:0:0:0", "self:", "self:1.2.3", ":::", "", "g:0:0:0",
		"1:2:3", "1:2:3:4:5",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseVN(s)
		if err != nil {
			return
		}
		back, err := ParseVN(v.String())
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q rejected: %v", v.String(), s, err)
		}
		if back != v {
			t.Fatalf("round trip diverged: %q → %v → %q → %v", s, v, v.String(), back)
		}
		// Flag classification must survive the round trip too.
		if back.IsSelf() != v.IsSelf() || back.IsMulticast() != v.IsMulticast() {
			t.Fatalf("flags diverged for %q: self %v→%v mcast %v→%v",
				s, v.IsSelf(), back.IsSelf(), v.IsMulticast(), back.IsMulticast())
		}
	})
}

func FuzzParsePrefix(f *testing.F) {
	for _, s := range []string{
		"10.0.0.0/8", "0.0.0.0/0", "255.255.255.255/32", "10.1.2.3/24",
		"10.0.0.0/33", "10.0.0.0/", "/8", "10.0.0.0", "1.2.3.4/ 8", "",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		if p.Len > 32 {
			t.Fatalf("accepted prefix %q has impossible length %d", s, p.Len)
		}
		// MakePrefix canonicalizes by masking; an accepted prefix must
		// already be canonical and contain its own address.
		if p.Addr&p.Mask() != p.Addr {
			t.Fatalf("accepted prefix %q not canonical: %v", s, p)
		}
		if !p.Contains(p.Addr) {
			t.Fatalf("prefix %v does not contain its own address", p)
		}
		back, err := ParsePrefix(p.String())
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q rejected: %v", p.String(), s, err)
		}
		if back != p {
			t.Fatalf("round trip diverged: %q → %v → %q → %v", s, p, p.String(), back)
		}
		// The formatted form always carries an explicit length.
		if !strings.Contains(p.String(), "/") {
			t.Fatalf("formatted prefix %q lacks a length", p.String())
		}
	})
}
