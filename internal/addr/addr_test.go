package addr

import (
	"testing"
	"testing/quick"
)

func TestV4RoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "10.0.0.1", "192.168.1.255", "255.255.255.255", "1.2.3.4"}
	for _, s := range cases {
		a, err := ParseV4(s)
		if err != nil {
			t.Fatalf("ParseV4(%q): %v", s, err)
		}
		if got := a.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestV4ParseErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"} {
		if _, err := ParseV4(s); err == nil {
			t.Errorf("ParseV4(%q) unexpectedly succeeded", s)
		}
	}
}

func TestV4Octets(t *testing.T) {
	a := V4FromOctets(10, 20, 30, 40)
	o1, o2, o3, o4 := a.Octets()
	if o1 != 10 || o2 != 20 || o3 != 30 || o4 != 40 {
		t.Errorf("Octets = %d.%d.%d.%d", o1, o2, o3, o4)
	}
}

func TestV4StringParseProperty(t *testing.T) {
	f := func(x uint32) bool {
		a := V4(x)
		back, err := ParseV4(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(MustParseV4("10.1.2.3")) {
		t.Error("10.1.0.0/16 should contain 10.1.2.3")
	}
	if p.Contains(MustParseV4("10.2.0.0")) {
		t.Error("10.1.0.0/16 should not contain 10.2.0.0")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseV4("255.255.255.255")) {
		t.Error("default prefix should contain everything")
	}
}

func TestPrefixCanonicalised(t *testing.T) {
	p := MakePrefix(MustParseV4("10.1.2.3"), 16)
	if p.Addr != MustParseV4("10.1.0.0") {
		t.Errorf("MakePrefix did not mask: %s", p)
	}
	q := MustParsePrefix("10.1.2.3/16")
	if q != p {
		t.Errorf("ParsePrefix did not canonicalise: %s vs %s", q, p)
	}
}

func TestPrefixContainsPrefixAndOverlaps(t *testing.T) {
	outer := MustParsePrefix("10.0.0.0/8")
	inner := MustParsePrefix("10.5.0.0/16")
	other := MustParsePrefix("11.0.0.0/8")
	if !outer.ContainsPrefix(inner) {
		t.Error("outer should contain inner")
	}
	if inner.ContainsPrefix(outer) {
		t.Error("inner should not contain outer")
	}
	if !outer.Overlaps(inner) || !inner.Overlaps(outer) {
		t.Error("overlap should be symmetric for nested prefixes")
	}
	if outer.Overlaps(other) {
		t.Error("disjoint prefixes should not overlap")
	}
}

func TestPrefixSize(t *testing.T) {
	if got := MustParsePrefix("10.0.0.0/8").Size(); got != 1<<24 {
		t.Errorf("/8 size = %d", got)
	}
	if got := HostPrefix(MustParseV4("1.2.3.4")).Size(); got != 1 {
		t.Errorf("/32 size = %d", got)
	}
	if got := MustParsePrefix("0.0.0.0/0").Size(); got != 1<<32 {
		t.Errorf("/0 size = %d", got)
	}
}

func TestSubnet(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	s0, err := p.Subnet(16, 0)
	if err != nil || s0 != MustParsePrefix("10.0.0.0/16") {
		t.Errorf("subnet 0: %v %v", s0, err)
	}
	s5, err := p.Subnet(16, 5)
	if err != nil || s5 != MustParsePrefix("10.5.0.0/16") {
		t.Errorf("subnet 5: %v %v", s5, err)
	}
	if _, err := p.Subnet(16, 256); err == nil {
		t.Error("subnet index out of range should fail")
	}
	if _, err := p.Subnet(4, 0); err == nil {
		t.Error("shorter subnet length should fail")
	}
}

func TestSubnetsDisjointProperty(t *testing.T) {
	p := MustParsePrefix("172.16.0.0/12")
	f := func(i, j uint8) bool {
		a, err1 := p.Subnet(20, uint32(i))
		b, err2 := p.Subnet(20, uint32(j))
		if err1 != nil || err2 != nil {
			return true // out of range: vacuously fine
		}
		if i == j {
			return a == b
		}
		return !a.Overlaps(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPool(t *testing.T) {
	pl := NewPool(MustParsePrefix("10.0.0.0/30"))
	want := []string{"10.0.0.1", "10.0.0.2", "10.0.0.3"}
	for _, w := range want {
		a, err := pl.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if a.String() != w {
			t.Errorf("Next = %s, want %s", a, w)
		}
	}
	if _, err := pl.Next(); err != ErrPrefixExhausted {
		t.Errorf("expected exhaustion, got %v", err)
	}
	if pl.Remaining() != 0 {
		t.Errorf("Remaining = %d", pl.Remaining())
	}
}

func TestPoolAddressesInsidePrefix(t *testing.T) {
	p := MustParsePrefix("192.168.4.0/24")
	pl := NewPool(p)
	seen := map[V4]bool{}
	for {
		a, err := pl.Next()
		if err != nil {
			break
		}
		if !p.Contains(a) {
			t.Fatalf("allocated %s outside %s", a, p)
		}
		if seen[a] {
			t.Fatalf("duplicate allocation %s", a)
		}
		seen[a] = true
	}
	if len(seen) != 255 {
		t.Errorf("allocated %d addresses from /24, want 255", len(seen))
	}
}
