package addr

import (
	"fmt"
	"strconv"
	"strings"
)

// VN is a 128-bit next-generation (IPvN) address. The protocol version is
// carried in the packet header, not in the address, so VN values for
// different IPvN generations share this type. VN is comparable and may be
// used as a map key.
//
// Bit layout (Hi is the most significant 64 bits):
//
//	bit 127          — self-address flag (§3.3.2): 1 if the host assigned
//	                   itself this address because its access provider does
//	                   not support IPvN
//	bits 126..96     — allocation authority / domain bits for native
//	                   addresses; reserved (zero) for self-addresses
//	bits 31..0 of Lo — for self-addresses, the host's underlay V4 address
type VN struct {
	Hi, Lo uint64
}

const (
	selfFlag = uint64(1) << 63
	// mcastFlag marks IPvN group (multicast) addresses — the kind of new
	// capability a next-generation IP exists to deliver.
	mcastFlag = uint64(1) << 62
)

// IsZero reports whether the address is the zero (unspecified) address.
func (v VN) IsZero() bool { return v.Hi == 0 && v.Lo == 0 }

// IsSelf reports whether this is a temporary self-assigned address derived
// from the host's underlay address (§3.3.2).
func (v VN) IsSelf() bool { return v.Hi&selfFlag != 0 }

// SelfAddress derives the temporary IPvN address for a host whose access
// provider does not support IPvN, embedding the host's unique IPv(N-1)
// address per the paper's RFC 3056-style scheme. The mapping is injective:
// distinct underlay addresses yield distinct self-addresses.
func SelfAddress(underlay V4) VN {
	return VN{Hi: selfFlag, Lo: uint64(underlay)}
}

// MulticastVN returns the IPvN group address for group number g. Group
// addresses are neither self-addresses nor native unicast; they name a
// set of subscribers maintained by the IPvN layer.
func MulticastVN(g uint32) VN {
	return VN{Hi: mcastFlag, Lo: uint64(g)}
}

// IsMulticast reports whether the address names an IPvN group.
func (v VN) IsMulticast() bool { return v.Hi&mcastFlag != 0 && !v.IsSelf() }

// Underlay extracts the embedded IPv(N-1) address from a self-address.
// ok is false if the address is not self-assigned.
func (v VN) Underlay() (a V4, ok bool) {
	if !v.IsSelf() {
		return 0, false
	}
	return V4(uint32(v.Lo)), true
}

// String renders the address as four 32-bit hex groups, with a "self:"
// marker and the embedded underlay address for self-addresses.
func (v VN) String() string {
	if v.IsSelf() {
		u, _ := v.Underlay()
		return fmt.Sprintf("self:%s", u)
	}
	return fmt.Sprintf("%08x:%08x:%08x:%08x",
		uint32(v.Hi>>32), uint32(v.Hi), uint32(v.Lo>>32), uint32(v.Lo))
}

// ParseVN parses either the four-hex-group form or the "self:a.b.c.d" form.
func ParseVN(s string) (VN, error) {
	if rest, ok := strings.CutPrefix(s, "self:"); ok {
		u, err := ParseV4(rest)
		if err != nil {
			return VN{}, err
		}
		return SelfAddress(u), nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return VN{}, fmt.Errorf("addr: %q is not an IPvN address", s)
	}
	var groups [4]uint64
	for i, p := range parts {
		g, err := strconv.ParseUint(p, 16, 32)
		if err != nil {
			return VN{}, fmt.Errorf("addr: bad group %q in %q", p, s)
		}
		groups[i] = g
	}
	return VN{Hi: groups[0]<<32 | groups[1], Lo: groups[2]<<32 | groups[3]}, nil
}

// MustParseVN is ParseVN that panics on malformed input.
func MustParseVN(s string) VN {
	v, err := ParseVN(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Compare orders addresses lexicographically by bits; it returns -1, 0 or 1.
func (v VN) Compare(w VN) int {
	switch {
	case v.Hi < w.Hi:
		return -1
	case v.Hi > w.Hi:
		return 1
	case v.Lo < w.Lo:
		return -1
	case v.Lo > w.Lo:
		return 1
	}
	return 0
}

// VNPrefix is a CIDR-style block over the IPvN address space, used by
// participant domains to advertise natively allocated IPvN addresses into
// the vN-Bone routing fabric.
type VNPrefix struct {
	Addr VN
	Len  uint8 // 0..128
}

// MakeVNPrefix canonicalises (masks) the address to the prefix length.
func MakeVNPrefix(v VN, length uint8) VNPrefix {
	if length > 128 {
		length = 128
	}
	hiMask, loMask := vnMask(length)
	return VNPrefix{Addr: VN{Hi: v.Hi & hiMask, Lo: v.Lo & loMask}, Len: length}
}

// HostVNPrefix is the /128 covering exactly v.
func HostVNPrefix(v VN) VNPrefix { return VNPrefix{Addr: v, Len: 128} }

func vnMask(length uint8) (hi, lo uint64) {
	switch {
	case length == 0:
		return 0, 0
	case length <= 64:
		return ^uint64(0) << (64 - length), 0
	case length >= 128:
		return ^uint64(0), ^uint64(0)
	default:
		return ^uint64(0), ^uint64(0) << (128 - length)
	}
}

// Contains reports whether v falls inside the prefix.
func (p VNPrefix) Contains(v VN) bool {
	hiMask, loMask := vnMask(p.Len)
	return v.Hi&hiMask == p.Addr.Hi&hiMask && v.Lo&loMask == p.Addr.Lo&loMask
}

// String renders the prefix as address/len.
func (p VNPrefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr, p.Len)
}

// DomainVNPrefix returns the canonical native IPvN block delegated to an
// adopting domain, derived deterministically from its AS number so that
// every participant can allocate without coordination. The self-address
// flag bit is always clear for native blocks.
func DomainVNPrefix(asn int) VNPrefix {
	return MakeVNPrefix(VN{Hi: uint64(uint32(asn)) << 24}, 40)
}

// VNPool allocates native IPvN host addresses sequentially from a prefix.
type VNPool struct {
	prefix VNPrefix
	next   uint64
}

// NewVNPool returns an allocator over p. Only prefixes of length ≥ 64 are
// supported (allocation happens in the low 64 bits), which all domain
// blocks satisfy after subnetting; DomainVNPrefix blocks are widened here
// by fixing Hi and allocating in Lo.
func NewVNPool(p VNPrefix) *VNPool {
	return &VNPool{prefix: p, next: 1}
}

// Next allocates the next unused address in the block.
func (pl *VNPool) Next() (VN, error) {
	var capacity uint64
	if pl.prefix.Len >= 64 {
		bits := 128 - pl.prefix.Len
		capacity = uint64(1) << bits
	} else {
		capacity = ^uint64(0) // effectively unbounded in Lo
	}
	if capacity != ^uint64(0) && pl.next >= capacity {
		return VN{}, ErrPrefixExhausted
	}
	v := VN{Hi: pl.prefix.Addr.Hi, Lo: pl.prefix.Addr.Lo + pl.next}
	pl.next++
	return v, nil
}
