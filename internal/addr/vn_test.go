package addr

import (
	"testing"
	"testing/quick"
)

func TestSelfAddressRoundTrip(t *testing.T) {
	u := MustParseV4("10.9.8.7")
	v := SelfAddress(u)
	if !v.IsSelf() {
		t.Fatal("self-address flag not set")
	}
	back, ok := v.Underlay()
	if !ok || back != u {
		t.Errorf("Underlay = %s, %v", back, ok)
	}
}

func TestSelfAddressInjective(t *testing.T) {
	// The paper requires the self-addressing scheme to derive a *unique*
	// IPvN address from the host's unique IPv(N-1) address.
	f := func(a, b uint32) bool {
		va, vb := SelfAddress(V4(a)), SelfAddress(V4(b))
		if a == b {
			return va == vb
		}
		return va != vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNativeAddressesAreNotSelf(t *testing.T) {
	p := DomainVNPrefix(65001)
	if p.Addr.IsSelf() {
		t.Error("native domain prefix has self flag set")
	}
	pool := NewVNPool(p)
	for i := 0; i < 100; i++ {
		v, err := pool.Next()
		if err != nil {
			t.Fatal(err)
		}
		if v.IsSelf() {
			t.Fatalf("native allocation %s has self flag", v)
		}
		if !p.Contains(v) {
			t.Fatalf("allocation %s outside %s", v, p)
		}
	}
}

func TestVNStringParseRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		v := VN{Hi: hi &^ selfFlag, Lo: lo} // native form renders as hex groups
		back, err := ParseVN(v.String())
		return err == nil && back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Self form round-trips through the self: notation.
	v := SelfAddress(MustParseV4("1.2.3.4"))
	back, err := ParseVN(v.String())
	if err != nil || back != v {
		t.Errorf("self round trip: %v %v", back, err)
	}
}

func TestVNParseErrors(t *testing.T) {
	for _, s := range []string{"", "1:2:3", "xyzw:0:0:0", "self:999.1.1.1", "1:2:3:4:5"} {
		if _, err := ParseVN(s); err == nil {
			t.Errorf("ParseVN(%q) unexpectedly succeeded", s)
		}
	}
}

func TestVNCompare(t *testing.T) {
	a := VN{Hi: 1, Lo: 0}
	b := VN{Hi: 1, Lo: 1}
	c := VN{Hi: 2, Lo: 0}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 || b.Compare(c) != -1 {
		t.Error("Compare ordering wrong")
	}
}

func TestVNPrefixContains(t *testing.T) {
	p := DomainVNPrefix(7)
	pool := NewVNPool(p)
	v, _ := pool.Next()
	if !p.Contains(v) {
		t.Errorf("%s should contain %s", p, v)
	}
	q := DomainVNPrefix(8)
	if q.Contains(v) {
		t.Errorf("%s should not contain %s", q, v)
	}
	all := MakeVNPrefix(VN{}, 0)
	if !all.Contains(v) || !all.Contains(SelfAddress(1)) {
		t.Error("/0 should contain everything")
	}
}

func TestVNPrefixMaskBoundaries(t *testing.T) {
	v := VN{Hi: ^uint64(0), Lo: ^uint64(0)}
	for _, l := range []uint8{0, 1, 63, 64, 65, 127, 128} {
		p := MakeVNPrefix(v, l)
		if !p.Contains(v) {
			t.Errorf("len %d: canonical prefix must contain its seed", l)
		}
	}
	p64 := MakeVNPrefix(v, 64)
	if p64.Addr.Lo != 0 || p64.Addr.Hi != ^uint64(0) {
		t.Errorf("len 64 mask wrong: %+v", p64.Addr)
	}
	p128 := MakeVNPrefix(v, 128)
	if p128.Addr != v {
		t.Error("/128 should not mask anything")
	}
}

func TestDomainVNPrefixesDisjoint(t *testing.T) {
	f := func(a, b uint16) bool {
		pa, pb := DomainVNPrefix(int(a)), DomainVNPrefix(int(b))
		poolA := NewVNPool(pa)
		va, err := poolA.Next()
		if err != nil {
			return false
		}
		if a == b {
			return pb.Contains(va)
		}
		return !pb.Contains(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVNPoolUnique(t *testing.T) {
	pool := NewVNPool(DomainVNPrefix(42))
	seen := map[VN]bool{}
	for i := 0; i < 1000; i++ {
		v, err := pool.Next()
		if err != nil {
			t.Fatal(err)
		}
		if seen[v] {
			t.Fatalf("duplicate %s", v)
		}
		seen[v] = true
	}
}

func TestOption1Address(t *testing.T) {
	a, err := Option1Address(0)
	if err != nil {
		t.Fatal(err)
	}
	if !IsOption1(a) {
		t.Errorf("%s should be in reserved block", a)
	}
	b, err := Option1Address(1)
	if err != nil || a == b {
		t.Errorf("groups must get distinct addresses: %s %s %v", a, b, err)
	}
	if _, err := Option1Address(1 << 30); err == nil {
		t.Error("out-of-block group should fail")
	}
}

func TestOption2Address(t *testing.T) {
	isp := MustParsePrefix("20.0.0.0/8")
	a, err := Option2Address(isp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !isp.Contains(a) {
		t.Errorf("option-2 address %s must lie inside the default ISP block %s", a, isp)
	}
	if IsOption1(a) {
		t.Error("option-2 address should be ordinary unicast, not reserved-block")
	}
	b, _ := Option2Address(isp, 1)
	if a == b {
		t.Error("distinct groups must get distinct addresses")
	}
	if _, err := Option2Address(MustParsePrefix("1.2.3.4/32"), 0); err == nil {
		t.Error("tiny block should be rejected")
	}
}

func TestGIAAddress(t *testing.T) {
	home := MustParsePrefix("131.107.0.0/16")
	a, err := GIAAddress(home, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !IsGIA(a) {
		t.Errorf("%s should carry the GIA indicator", a)
	}
	site, group, err := GIAHomeSite(a)
	if err != nil {
		t.Fatal(err)
	}
	if group != 5 {
		t.Errorf("group = %d, want 5", group)
	}
	wantSite := (uint32(home.Addr) >> 16) & 0x07FF
	if site != wantSite {
		t.Errorf("site = %d, want %d", site, wantSite)
	}
	if _, _, err := GIAHomeSite(MustParseV4("10.0.0.1")); err == nil {
		t.Error("non-GIA address should be rejected")
	}
	if _, err := GIAAddress(MustParsePrefix("10.0.0.0/24"), 0); err == nil {
		t.Error("overlong home prefix should be rejected")
	}
}

func TestHostVNPrefix(t *testing.T) {
	v := MustParseVN("00000001:00000002:00000003:00000004")
	p := HostVNPrefix(v)
	if !p.Contains(v) || p.Len != 128 {
		t.Error("host prefix must contain exactly its address")
	}
	w := VN{Hi: v.Hi, Lo: v.Lo + 1}
	if p.Contains(w) {
		t.Error("host prefix must not contain neighbours")
	}
}
