package addr

import "fmt"

// This file implements the address-level half of the paper's §3.2 anycast
// options. Which routes get advertised where is the business of
// internal/anycast and internal/routing/bgp; here we only define how
// anycast addresses are carved out of the address space.
//
// Option 1 — "non-aggregatable addresses, global routes": a designated
// portion of the unicast space is set aside for anycast and each address is
// advertised individually (host routes) by every participant.
//
// Option 2 — "aggregatable addresses, default routes": the anycast address
// is an ordinary unicast address drawn from the *default* ISP's own block,
// so non-participants need no changes at all — longest-prefix match on the
// default ISP's aggregate carries the packet toward the default domain.
//
// GIA (Katabi et al.), discussed as an eventual replacement, prefixes a
// well-known "Anycast Indicator" and embeds the home domain's unicast bits.

// AnycastReserved is the option-1 designated anycast block: a slice of the
// unicast space set aside by convention (we use the top of class E).
var AnycastReserved = MustParsePrefix("240.0.0.0/8")

// Option1Address returns the g-th option-1 anycast address from the
// designated block. One address serves one IPvN deployment, so g is
// expected to stay very small (§3.2: "ideally one").
func Option1Address(g uint32) (V4, error) {
	if uint64(g)+1 >= AnycastReserved.Size() {
		return 0, fmt.Errorf("addr: anycast group %d outside reserved block", g)
	}
	return V4(uint32(AnycastReserved.Addr) + g + 1), nil
}

// IsOption1 reports whether a lies in the designated option-1 block.
func IsOption1(a V4) bool { return AnycastReserved.Contains(a) }

// Option2Address returns an option-2 anycast address: the g-th address of a
// reserved sub-block at the top of the default ISP's own aggregate. Being
// ordinary unicast addresses, these need no routing-infrastructure changes.
func Option2Address(defaultISP Prefix, g uint32) (V4, error) {
	if defaultISP.Len > 30 {
		return 0, fmt.Errorf("addr: default ISP block %s too small for anycast carve-out", defaultISP)
	}
	// Reserve the top quarter of the block, allocating downward from its end.
	top := uint32(defaultISP.Addr) + uint32(defaultISP.Size()) - 1
	a := V4(top - g)
	if !defaultISP.Contains(a) {
		return 0, fmt.Errorf("addr: anycast group %d outside default ISP block %s", g, defaultISP)
	}
	return a, nil
}

// GIAIndicator is the well-known GIA anycast-indicator prefix.
var GIAIndicator = MustParsePrefix("248.0.0.0/5")

// GIAAddress builds a GIA-style anycast address: indicator bits, then the
// home domain's /16 site bits, then the group number in the low bits.
func GIAAddress(home Prefix, g uint8) (V4, error) {
	if home.Len < 8 || home.Len > 16 {
		return 0, fmt.Errorf("addr: GIA home domain prefix %s must be /8../16", home)
	}
	site := (uint32(home.Addr) >> 16) & 0x07FF // 11 bits of the home /16
	a := uint32(GIAIndicator.Addr) | site<<8 | uint32(g)
	return V4(a), nil
}

// IsGIA reports whether a carries the GIA anycast indicator.
func IsGIA(a V4) bool { return GIAIndicator.Contains(a) }

// GIAHomeSite extracts the home-domain site bits from a GIA address so a
// router with no anycast entry can fall back to unicast routing toward the
// home domain ("default routes").
func GIAHomeSite(a V4) (site uint32, group uint8, err error) {
	if !IsGIA(a) {
		return 0, 0, fmt.Errorf("addr: %s is not a GIA anycast address", a)
	}
	return (uint32(a) >> 8) & 0x07FF, uint8(uint32(a) & 0xFF), nil
}
