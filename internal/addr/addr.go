// Package addr defines the address types used throughout the evolvable
// internet architecture: 32-bit IPv(N-1) underlay addresses ("v4-like"),
// CIDR prefixes over them, and 128-bit versioned IPvN addresses, including
// the RFC 3056-style self-addressing scheme the paper proposes for hosts
// whose access provider has not yet adopted IPvN (§3.3.2), and GIA-style
// anycast-indicator addressing (§3.2).
package addr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// V4 is a 32-bit underlay address, playing the role of IPv(N-1) — the
// ubiquitously deployed internet protocol the next generation is layered
// over. It is stored in host order; the wire format is big-endian.
type V4 uint32

// V4FromOctets assembles an address from its four dotted-quad octets.
func V4FromOctets(a, b, c, d byte) V4 {
	return V4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// Octets returns the four dotted-quad octets of the address.
func (a V4) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// String renders the address in dotted-quad notation.
func (a V4) String() string {
	o1, o2, o3, o4 := a.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", o1, o2, o3, o4)
}

// ParseV4 parses dotted-quad notation.
func ParseV4(s string) (V4, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("addr: %q is not dotted-quad", s)
	}
	var out V4
	for _, p := range parts {
		n, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("addr: bad octet %q in %q", p, s)
		}
		out = out<<8 | V4(n)
	}
	return out, nil
}

// MustParseV4 is ParseV4 for constants in tests and examples; it panics on
// malformed input.
func MustParseV4(s string) V4 {
	a, err := ParseV4(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Prefix is a CIDR block over the underlay address space.
type Prefix struct {
	Addr V4
	Len  uint8 // 0..32
}

// ErrPrefixExhausted is returned by Pool.Next when no addresses remain.
var ErrPrefixExhausted = errors.New("addr: prefix exhausted")

// MakePrefix returns the canonical (masked) prefix for addr/len.
func MakePrefix(a V4, length uint8) Prefix {
	if length > 32 {
		length = 32
	}
	return Prefix{Addr: a & maskOf(length), Len: length}
}

// HostPrefix is the /32 covering exactly a.
func HostPrefix(a V4) Prefix { return Prefix{Addr: a, Len: 32} }

func maskOf(length uint8) V4 {
	if length == 0 {
		return 0
	}
	return V4(^uint32(0) << (32 - length))
}

// Mask returns the netmask of the prefix.
func (p Prefix) Mask() V4 { return maskOf(p.Len) }

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a V4) bool {
	return a&p.Mask() == p.Addr&p.Mask()
}

// ContainsPrefix reports whether q is wholly inside p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Len >= p.Len && p.Contains(q.Addr)
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 { return uint64(1) << (32 - p.Len) }

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.Addr.String(), p.Len)
}

// ParsePrefix parses CIDR notation, canonicalising the network address.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("addr: %q is not CIDR", s)
	}
	a, err := ParseV4(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	n, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || n > 32 {
		return Prefix{}, fmt.Errorf("addr: bad prefix length in %q", s)
	}
	return MakePrefix(a, uint8(n)), nil
}

// MustParsePrefix is ParsePrefix that panics on malformed input.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Subnet carves the i-th sub-prefix of the given length out of p.
func (p Prefix) Subnet(length uint8, i uint32) (Prefix, error) {
	if length < p.Len || length > 32 {
		return Prefix{}, fmt.Errorf("addr: cannot take /%d subnet of %s", length, p)
	}
	n := uint64(1) << (length - p.Len)
	if uint64(i) >= n {
		return Prefix{}, fmt.Errorf("addr: subnet index %d out of range for /%d of %s", i, length, p)
	}
	base := uint32(p.Addr) | (i << (32 - length))
	return Prefix{Addr: V4(base), Len: length}, nil
}

// Pool allocates addresses sequentially from a prefix. The zero address of
// the prefix (its network address) is never handed out, matching the
// convention that it names the block itself.
type Pool struct {
	prefix Prefix
	next   uint64
}

// NewPool returns an allocator over p.
func NewPool(p Prefix) *Pool {
	return &Pool{prefix: p, next: 1}
}

// Prefix returns the block the pool allocates from.
func (pl *Pool) Prefix() Prefix { return pl.prefix }

// Next allocates the next unused address in the block.
func (pl *Pool) Next() (V4, error) {
	if pl.next >= pl.prefix.Size() {
		return 0, ErrPrefixExhausted
	}
	a := V4(uint32(pl.prefix.Addr) + uint32(pl.next))
	pl.next++
	return a, nil
}

// Remaining reports how many addresses the pool can still allocate.
func (pl *Pool) Remaining() uint64 {
	if pl.next >= pl.prefix.Size() {
		return 0
	}
	return pl.prefix.Size() - pl.next
}
