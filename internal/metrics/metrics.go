// Package metrics provides the measurement primitives the experiment
// harness reports: path stretch, summary statistics and histograms.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stretch is the ratio of an achieved path cost to the optimal path cost.
// By convention Stretch(x, 0) with x > 0 is +Inf and Stretch(0, 0) is 1.
func Stretch(achieved, optimal int64) float64 {
	if optimal == 0 {
		if achieved == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(achieved) / float64(optimal)
}

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P95  float64
	Stddev         float64
}

// Summarize computes a Summary; an empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	// Welford's online algorithm: the textbook sumSq/n − mean² form
	// cancels catastrophically when the mean dwarfs the spread (cost
	// samples around 1e8 would report Stddev 0).
	var mean, m2 float64
	for i, x := range s {
		delta := x - mean
		mean += delta / float64(i+1)
		m2 += delta * (x - mean)
	}
	variance := m2 / float64(len(s))
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		Min:    s[0],
		Max:    s[len(s)-1],
		P50:    Percentile(s, 50),
		P90:    Percentile(s, 90),
		P95:    Percentile(s, 95),
		Stddev: math.Sqrt(variance),
	}
}

// Percentile returns the p-th percentile (0–100) of a sorted sample using
// nearest-rank with linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly for harness output.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.P50, s.P95, s.Max)
}

// Histogram counts observations in fixed-width buckets.
type Histogram struct {
	Width   float64
	buckets map[int]int
	n       int
}

// NewHistogram returns a histogram with the given bucket width.
func NewHistogram(width float64) *Histogram {
	if width <= 0 {
		width = 1
	}
	return &Histogram{Width: width, buckets: map[int]int{}}
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.buckets[int(math.Floor(x/h.Width))]++
	h.n++
}

// N returns the number of observations.
func (h *Histogram) N() int { return h.n }

// Count returns the observations in the bucket containing x.
func (h *Histogram) Count(x float64) int {
	return h.buckets[int(math.Floor(x/h.Width))]
}

// String renders an ASCII bar chart, one row per non-empty bucket.
func (h *Histogram) String() string {
	if h.n == 0 {
		return "(empty)"
	}
	keys := make([]int, 0, len(h.buckets))
	maxCount := 0
	for k, c := range h.buckets {
		keys = append(keys, k)
		if c > maxCount {
			maxCount = c
		}
	}
	sort.Ints(keys)
	var b strings.Builder
	for _, k := range keys {
		c := h.buckets[k]
		bar := strings.Repeat("#", int(math.Ceil(float64(c)/float64(maxCount)*40)))
		fmt.Fprintf(&b, "[%8.2f, %8.2f) %6d %s\n",
			float64(k)*h.Width, float64(k+1)*h.Width, c, bar)
	}
	return b.String()
}
