package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStretch(t *testing.T) {
	if got := Stretch(30, 10); got != 3 {
		t.Errorf("Stretch(30,10) = %v", got)
	}
	if got := Stretch(10, 10); got != 1 {
		t.Errorf("Stretch equal = %v", got)
	}
	if got := Stretch(0, 0); got != 1 {
		t.Errorf("Stretch(0,0) = %v", got)
	}
	if !math.IsInf(Stretch(5, 0), 1) {
		t.Error("Stretch(5,0) should be +Inf")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %v", s.Stddev)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty sample should have N=0")
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("String = %q", s.String())
	}
	if Summarize(nil).String() != "n=0" {
		t.Error("empty String wrong")
	}
}

func TestSummarizeLargeOffset(t *testing.T) {
	// Samples with a huge common offset and a small spread: the naive
	// sumSq/n − mean² variance cancels to 0 at this magnitude; Welford's
	// recurrence must keep the true stddev.
	base := []float64{1, 2, 3, 4, 5}
	want := Summarize(base).Stddev // √2
	const offset = 1e8
	shifted := make([]float64, len(base))
	for i, x := range base {
		shifted[i] = x + offset
	}
	s := Summarize(shifted)
	if math.Abs(s.Stddev-want) > 1e-6 {
		t.Errorf("Stddev at offset %g = %v, want %v", offset, s.Stddev, want)
	}
	if math.Abs(s.Mean-(3+offset)) > 1e-6 {
		t.Errorf("Mean at offset %g = %v", offset, s.Mean)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {200, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		lo, hi := float64(a%101), float64(b%101)
		if lo > hi {
			lo, hi = hi, lo
		}
		sorted := append([]float64(nil), xs...)
		sortFloats(sorted)
		return Percentile(sorted, lo) <= Percentile(sorted, hi) &&
			s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0.5)
	for _, x := range []float64{0.1, 0.2, 0.6, 1.2, 1.3, 1.4} {
		h.Observe(x)
	}
	if h.N() != 6 {
		t.Errorf("N = %d", h.N())
	}
	if h.Count(0.3) != 2 || h.Count(0.7) != 1 || h.Count(1.1) != 3 {
		t.Errorf("bucket counts wrong: %v %v %v", h.Count(0.3), h.Count(0.7), h.Count(1.1))
	}
	out := h.String()
	if !strings.Contains(out, "#") {
		t.Errorf("String = %q", out)
	}
	if NewHistogram(0).Width != 1 {
		t.Error("zero width should default to 1")
	}
	if NewHistogram(1).String() != "(empty)" {
		t.Error("empty histogram String wrong")
	}
}
